#ifndef BDISK_BROADCAST_AIR_INDEX_H_
#define BDISK_BROADCAST_AIR_INDEX_H_

#include <cstdint>
#include <vector>

namespace bdisk::broadcast {

/// (1,m) air indexing, after Imielinski/Viswanathan/Badrinath's "Energy
/// Efficient Indexing on Air" ([Imie94b], cited in §5; the paper's
/// footnote 2 notes that broadcast predictability "can be used to reduce
/// power consumption in mobile networks").
///
/// An index of `index_slots` buckets is interleaved `m` times per cycle at
/// even spacing. A client wanting a page (a) probes until the next index
/// segment, (b) reads the index, (c) dozes until the page's slot, and
/// (d) reads the page. Doze time costs (almost) no power; *tuning time*
/// (active slots) is the energy proxy, traded off against access latency.
struct AirIndexConfig {
  /// Data slots per cycle (e.g. the Broadcast Disk major cycle length).
  std::uint32_t data_slots = 0;
  /// Size of one index segment, in slots.
  std::uint32_t index_slots = 1;
  /// Number of index segments per cycle (the "m" of (1,m)).
  std::uint32_t m = 1;
};

/// Total cycle length with the index interleaved: data + m * index.
double IndexedCycleLength(const AirIndexConfig& config);

/// Expected access latency in broadcast units for a uniformly random
/// tune-in and target slot: wait-to-index + index read + doze-to-page +
/// page transmission.
double ExpectedLatency(const AirIndexConfig& config);

/// Expected tuning time (active slots): initial probe + index read + page
/// read. Independent of m — the whole point of indexing.
double ExpectedTuningTime(const AirIndexConfig& config);

/// Latency / tuning without any index: the client stays awake until its
/// page arrives (tuning == latency == data/2 + 1).
double UnindexedLatency(std::uint32_t data_slots);
double UnindexedTuningTime(std::uint32_t data_slots);

/// The latency-minimizing index frequency: m* = round(sqrt(data/index)),
/// at least 1 — the classic (1,m) optimum.
std::uint32_t OptimalIndexFrequency(std::uint32_t data_slots,
                                    std::uint32_t index_slots);

/// Slot offsets (within the indexed cycle) at which each of the m index
/// segments begins; segments are maximally evenly spaced. For building a
/// physical indexed schedule.
std::vector<std::uint32_t> IndexSegmentStarts(const AirIndexConfig& config);

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_AIR_INDEX_H_
