#ifndef BDISK_BROADCAST_SCHEDULE_CURSOR_H_
#define BDISK_BROADCAST_SCHEDULE_CURSOR_H_

#include <algorithm>
#include <cstdint>

#include "broadcast/broadcast_program.h"
#include "broadcast/page.h"

namespace bdisk::broadcast {

/// The server's read position in the periodic broadcast program.
///
/// The cursor only advances when a slot is actually given to the push
/// program: when the Push/Pull MUX awards a slot to a pulled page, the
/// periodic schedule is delayed, not skipped (this is why raising PullBW
/// "slows the disk rotation" in the paper's terms).
class ScheduleCursor {
 public:
  /// The program must outlive the cursor and be non-empty.
  explicit ScheduleCursor(const BroadcastProgram* program);

  /// Position of the next slot to be pushed, in [0, program length).
  std::uint32_t Position() const { return pos_; }

  /// Returns the page in the current slot and advances (cyclically).
  /// Reads the flat schedule array cached at construction — one load and a
  /// wrap test per slot, no indirection through the program.
  PageId Advance() {
    const PageId page = data_[pos_];
    pos_ = (pos_ + 1 == length_) ? 0 : pos_ + 1;
    return page;
  }

  /// Slots of *push schedule* until `page` next appears, counting from the
  /// current position (0 = it is the very next pushed slot). This is the
  /// quantity the client threshold filter compares against
  /// ThresPerc * MajorCycleSize; it is a lower bound on real slots since
  /// interleaved pull responses delay the schedule (paper footnote 7 makes
  /// the converse point for the client's wait).
  ///
  /// Runs over the CSR occurrence pointers cached at construction, like
  /// Advance(): two offset loads, one lower_bound over the page's sorted
  /// occurrence run, no indirection through the program.
  std::uint32_t DistanceToNext(PageId page) const {
    const std::uint32_t* first = occ_positions_ + occ_offsets_[page];
    const std::uint32_t* last = occ_positions_ + occ_offsets_[page + 1];
    if (first == last) return BroadcastProgram::kNeverBroadcast;
    // First occurrence at or after pos_, else wrap to the first of the
    // next cycle.
    const std::uint32_t* it = std::lower_bound(first, last, pos_);
    if (it != last) return *it - pos_;
    return length_ - pos_ + *first;
  }

  /// The underlying program.
  const BroadcastProgram& program() const { return *program_; }

 private:
  const BroadcastProgram* program_;
  const PageId* data_;     // == program_->ScheduleData(), cached.
  std::uint32_t length_;   // == program_->Length(), cached.
  const std::uint32_t* occ_offsets_;    // CSR index, cached.
  const std::uint32_t* occ_positions_;  // CSR index, cached.
  std::uint32_t pos_ = 0;
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_SCHEDULE_CURSOR_H_
