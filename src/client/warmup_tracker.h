#ifndef BDISK_CLIENT_WARMUP_TRACKER_H_
#define BDISK_CLIENT_WARMUP_TRACKER_H_

#include <cstdint>
#include <vector>

#include "broadcast/page.h"
#include "sim/time_series.h"
#include "sim/types.h"

namespace bdisk::client {

using broadcast::PageId;

/// Tracks how quickly a client's cache acquires its "ideal" contents.
///
/// Figure 4 measures warm-up as the time for the cache to contain X% of the
/// CacheSize *highest-valued* pages (value = the active replacement
/// policy's metric: PIX for push-based access, P for Pure-Pull). The
/// tracker is fed the target set up front and notified of every cache
/// insertion/eviction; it records a (time, fraction) trajectory.
class WarmupTracker {
 public:
  /// `target_pages`: the CacheSize highest-valued pages; `db_size` bounds
  /// valid ids.
  WarmupTracker(const std::vector<PageId>& target_pages,
                std::uint32_t db_size);

  /// Notify that `page` became resident at time `now`.
  void OnInsert(PageId page, sim::SimTime now);

  /// Notify that `page` was evicted at time `now`.
  void OnEvict(PageId page, sim::SimTime now);

  /// Fraction of the target set currently resident, in [0,1].
  double Fraction() const;

  /// First time the resident fraction reached `fraction`, or kTimeNever.
  sim::SimTime TimeToFraction(double fraction) const {
    return trajectory_.FirstTimeAtOrAbove(fraction);
  }

  /// The full (time, fraction) trajectory, one sample per change.
  const sim::TimeSeries& trajectory() const { return trajectory_; }

 private:
  std::vector<bool> is_target_;
  std::vector<bool> resident_target_;
  std::uint32_t target_size_;
  std::uint32_t resident_count_ = 0;
  sim::TimeSeries trajectory_;
};

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_WARMUP_TRACKER_H_
