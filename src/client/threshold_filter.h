#ifndef BDISK_CLIENT_THRESHOLD_FILTER_H_
#define BDISK_CLIENT_THRESHOLD_FILTER_H_

#include <cstdint>

#include "broadcast/broadcast_program.h"

namespace bdisk::client {

/// The client-side backchannel conservation knob (§2.3, Experiment 2).
///
/// On a cache miss, the client sends a pull request only when the missed
/// page's next scheduled push is more than ThresPerc × MajorCycleSize slots
/// away — saving the backchannel for the pages that would otherwise incur
/// the largest latency. Pages absent from the push schedule always pass
/// (their push latency is unbounded, §4.3).
class ThresholdFilter {
 public:
  /// `thres_perc` in [0,1]; `major_cycle_len` is the push-program length
  /// (may be 0 for Pure-Pull, where thresholding is meaningless and every
  /// miss passes).
  ThresholdFilter(double thres_perc, std::uint32_t major_cycle_len);

  /// `distance` is the number of push-schedule slots until the page next
  /// appears (BroadcastProgram::kNeverBroadcast if unscheduled). True when
  /// the client should spend a backchannel request on it.
  bool ShouldPull(std::uint32_t distance) const {
    return distance > threshold_slots_;
  }

  /// The absolute threshold, in push-schedule slots.
  std::uint32_t ThresholdSlots() const { return threshold_slots_; }

 private:
  std::uint32_t threshold_slots_;
};

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_THRESHOLD_FILTER_H_
