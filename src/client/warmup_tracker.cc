#include "client/warmup_tracker.h"

#include "sim/check.h"

namespace bdisk::client {

WarmupTracker::WarmupTracker(const std::vector<PageId>& target_pages,
                             std::uint32_t db_size)
    : is_target_(db_size, false),
      resident_target_(db_size, false),
      target_size_(static_cast<std::uint32_t>(target_pages.size())) {
  BDISK_CHECK_MSG(!target_pages.empty(), "warm-up target set is empty");
  for (const PageId p : target_pages) {
    BDISK_CHECK_MSG(p < db_size, "target page out of range");
    is_target_[p] = true;
  }
}

void WarmupTracker::OnInsert(PageId page, sim::SimTime now) {
  BDISK_DCHECK(page < is_target_.size());
  if (!is_target_[page] || resident_target_[page]) return;
  resident_target_[page] = true;
  ++resident_count_;
  trajectory_.Add(now, Fraction());
}

void WarmupTracker::OnEvict(PageId page, sim::SimTime now) {
  BDISK_DCHECK(page < is_target_.size());
  if (!is_target_[page] || !resident_target_[page]) return;
  resident_target_[page] = false;
  --resident_count_;
  trajectory_.Add(now, Fraction());
}

double WarmupTracker::Fraction() const {
  return static_cast<double>(resident_count_) /
         static_cast<double>(target_size_);
}

}  // namespace bdisk::client
