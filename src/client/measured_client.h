#ifndef BDISK_CLIENT_MEASURED_CLIENT_H_
#define BDISK_CLIENT_MEASURED_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.h"
#include "client/threshold_filter.h"
#include "fault/backoff.h"
#include "client/warmup_tracker.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"
#include "server/broadcast_server.h"
#include "server/update_generator.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "workload/access_generator.h"
#include "workload/access_pattern.h"
#include "workload/think_time.h"

namespace bdisk::transport {
class Transport;
}  // namespace bdisk::transport

namespace bdisk::client {

/// Configuration of a measured client.
struct MeasuredClientOptions {
  /// Client cache size in pages (Table 1: 100).
  std::uint32_t cache_size = 100;

  /// Replacement policy: PIX whenever a push program exists, P for
  /// Pure-Pull (§3.1).
  cache::PolicyKind policy = cache::PolicyKind::kPix;

  /// Fixed think time between requests, in broadcast units (Table 3: 20).
  double think_time = 20.0;

  /// Backchannel present? False models Pure-Push clients, which can only
  /// wait for the periodic broadcast.
  bool use_backchannel = true;

  /// Threshold fraction (ThresPerc). Ignored when use_backchannel is false.
  double thres_perc = 0.0;

  /// Re-submission interval for pulls of pages that are NOT on the push
  /// schedule. The paper gives clients no feedback about dropped requests;
  /// without a safety net, a dropped request for an unscheduled page would
  /// block the client forever unless some other client pulls the same page.
  /// Real clients time out and resend; we do the same (see DESIGN.md).
  /// 0 disables retries. Only unscheduled pages are ever retried — for
  /// scheduled pages the push program bounds the wait.
  double retry_interval = 0.0;

  /// Opportunistic PT prefetching from the broadcast ([Acha96a], cited in
  /// §5): for every page flowing past, if its value p*t (access
  /// probability x time until it next comes around) exceeds the lowest
  /// p*t among cached pages, swap it in. Requires a push program.
  bool prefetch = false;
};

/// Resolved client-robustness settings (bdisk::fault). Auto-defaults (0
/// values in the FaultPlan) are resolved by core::System before this
/// reaches the client, so every field here is concrete and positive where
/// it must be. Engaging these replaces the legacy unscheduled-retry timer
/// with a full timeout/retry/backoff engine on every pull.
struct RobustPullOptions {
  /// Base per-request timeout in broadcast units (> 0).
  double timeout = 0.0;
  /// Bounded retries per request after the initial pull.
  std::uint32_t max_retries = 3;
  /// Timeout multiplier per retry (>= 1).
  double backoff = 2.0;
  /// Absolute cap on the backed-off timeout, pre-jitter (> 0).
  double backoff_cap = 0.0;
  /// Each armed timeout is stretched by a uniform draw in
  /// [0, jitter * timeout) from the client's dedicated retry RNG stream —
  /// deterministic per seed, decorrelated across requests.
  double jitter = 0.1;
  /// Consecutive fully-failed requests before the backchannel is declared
  /// dead; 0 = never.
  std::uint32_t dead_threshold = 5;
  /// While dead, minimum spacing between probe pulls for scheduled pages
  /// (> 0). Unscheduled pages always pull — it is their only path — and
  /// snooping any pull-slot delivery revives the backchannel immediately.
  double probe_interval = 0.0;
};

/// The Measured Client (MC, §3.1): a closed-loop "request–think" process
/// whose response times are the primary experimental metric.
///
/// Per access: consult the cache (a hit costs 0 and is included in the
/// average); on a miss, optionally send a pull request (threshold filter
/// permitting) and block until the page appears on the frontchannel —
/// whether as a scheduled push, the response to our pull, or a snooped
/// response to someone else's. Then think for `think_time` and repeat.
class MeasuredClient : public sim::Process,
                       public server::BroadcastListener,
                       public server::InvalidationListener {
 public:
  /// `pattern` is this client's own access pattern (possibly Noise-
  /// perturbed). The client registers itself as a listener on `server`.
  /// `warmup_target` (optional) enables warm-up tracking against the given
  /// ideal cache contents.
  MeasuredClient(sim::Simulator* simulator, server::BroadcastServer* server,
                 const workload::AccessPattern& pattern,
                 const MeasuredClientOptions& options, sim::Rng rng,
                 std::optional<std::vector<PageId>> warmup_target =
                     std::nullopt);

  /// Begins the request–think loop with an immediate first request.
  void Start();

  /// Invoked after every completed access (hit or retrieved page), with the
  /// response time of that access. The experiment driver uses this to
  /// switch measurement phases and stop the run.
  void SetOnAccessComplete(std::function<void(double response_time)> cb) {
    on_access_complete_ = std::move(cb);
  }

  /// When true, completed accesses are recorded into response_times().
  void SetRecording(bool recording) { recording_ = recording; }

  /// Re-tunes the threshold fraction at runtime (adaptive clients, paper
  /// §6: "use a larger threshold at the client" as contention grows).
  void SetThresPerc(double thres_perc);

  /// Current threshold fraction.
  double thres_perc() const { return options_.thres_perc; }

  /// Exponentially weighted mean of (actual wait) / (scheduled push wait)
  /// over this client's recent pulls of *scheduled* pages. Near 0: pulls
  /// are answered far ahead of the push schedule (server healthy). Near 1:
  /// pulls gain nothing over just waiting (requests are being dropped) —
  /// the only saturation signal a client can compute locally, since the
  /// server sends no feedback. Returns 0 before any pull completes.
  double PullWaitRatio() const { return pull_wait_ratio_; }

  /// Clears the recorded response-time statistics (not lifetime counters).
  void ResetStats() {
    response_times_.Reset();
    response_histogram_.Reset();
  }

  /// Attaches the system-wide structured trace (not owned; null detaches).
  /// Every access is recorded as request / hit-or-miss / filtered / retry /
  /// delivery records under obs::kMeasuredClientId.
  void SetTraceSink(obs::TraceSink* sink) { sink_ = sink; }

  /// Attaches the windowed telemetry collector (not owned; null detaches).
  /// Every completed access (cache hits included, at 0) feeds its response
  /// time into the current window.
  void SetWindowedCollector(obs::WindowedCollector* collector) {
    collector_ = collector;
  }

  /// Engages the robust pull engine (bdisk::fault): per-request timeouts,
  /// bounded retries with exponential backoff and deterministic jitter,
  /// dead-backchannel detection with fallback-to-broadcast, and explicit
  /// abandonment of unscheduled-page requests once the retry budget is
  /// spent. `rng` must be a dedicated stream (jitter draws never perturb
  /// the access stream). Call before Start(); supersedes the legacy
  /// retry_interval timer.
  void EnableRobustness(const RobustPullOptions& options, sim::Rng rng);

  /// Robustness accounting (all zero unless EnableRobustness was called).
  std::uint64_t TimeoutsFired() const { return timeouts_fired_; }
  std::uint64_t Abandoned() const { return abandoned_; }
  std::uint64_t Fallbacks() const { return fallbacks_; }
  std::uint64_t ProbesSent() const { return probes_sent_; }
  std::uint64_t BackchannelDeaths() const { return backchannel_deaths_; }
  std::uint64_t BackchannelRecoveries() const {
    return backchannel_recoveries_;
  }
  bool BackchannelDead() const { return backchannel_dead_; }

  /// Routes every pull submission (initial, retry, probe, legacy resend)
  /// through `transport` (not owned; null restores the direct server
  /// call). The sim backend forwards to the very SubmitRequest call the
  /// client made before the seam existed, so simulated trajectories are
  /// bit-identical with or without it; the datagram backend carries the
  /// same submissions over a real socket.
  void SetTransport(transport::Transport* transport) {
    transport_ = transport;
  }

  /// Attaches a metrics registry (not owned): wires the cache's
  /// eviction-value stream into "client.mc.cache.evict_value". Lifetime
  /// counters and the response histogram are snapshotted at collect time
  /// instead (see core::System::SnapshotMetrics), so nothing else changes
  /// on the hot path.
  void EnableMetrics(obs::MetricsRegistry* registry);

  // BroadcastListener:
  void OnBroadcast(PageId page, server::SlotKind kind,
                   sim::SimTime now) override;

  // InvalidationListener: a stale cached copy is dropped; the next access
  // to the page is a miss (volatile-data extension, [Acha96b]).
  void OnInvalidate(PageId page, sim::SimTime now) override;

  /// Recorded response times (only accesses completed while recording).
  const sim::RunningStats& response_times() const { return response_times_; }

  /// Bucketed distribution of the same recorded response times — the
  /// source of RunResult's p50/p90/p95/p99. Always on: Add() is two array
  /// writes, negligible against an event dispatch, and keeping it
  /// unconditional means percentiles are available without any registry.
  const obs::LatencyHistogram& response_histogram() const {
    return response_histogram_;
  }

  /// Lifetime access counters.
  std::uint64_t TotalAccesses() const { return total_accesses_; }
  std::uint64_t CacheHits() const { return cache_->Hits(); }
  std::uint64_t PullRequestsSent() const { return pull_requests_sent_; }
  std::uint64_t RetriesSent() const { return retries_sent_; }
  std::uint64_t Prefetches() const { return prefetches_; }
  std::uint64_t InvalidationsSeen() const { return invalidations_seen_; }

  /// The client cache.
  const cache::Cache& cache() const { return *cache_; }

  /// Warm-up trajectory; null unless a warm-up target was supplied.
  const WarmupTracker* warmup_tracker() const {
    return warmup_tracker_ ? &*warmup_tracker_ : nullptr;
  }

  /// True while blocked on a page.
  bool IsWaiting() const { return state_ == State::kWaiting; }

 protected:
  void OnWakeup() override;

 private:
  enum class State { kIdle, kThinking, kWaiting };

  void MakeRequest();
  /// Single choke point for backchannel submissions: the transport seam
  /// when one is set, the direct server call otherwise.
  void SubmitPull(PageId page);
  void CompleteAccess(double response_time);
  void InsertIntoCache(PageId page, sim::SimTime now);
  void ConsiderPrefetch(PageId page, sim::SimTime now);

  /// Robust engine: arms the wakeup timer with the backed-off, capped,
  /// jittered timeout for the current attempt number.
  void ArmRobustTimeout();
  /// Robust engine: the armed timeout fired while waiting.
  void OnRobustTimeout();
  /// Robust engine: submits the pull for the current attempt (initial or
  /// probe), arming the timeout.
  void SendRobustPull(PageId page);

  server::BroadcastServer* server_;
  transport::Transport* transport_ = nullptr;  // Not owned; null = direct.
  workload::AccessGenerator generator_;
  MeasuredClientOptions options_;
  ThresholdFilter filter_;
  std::unique_ptr<cache::Cache> cache_;
  std::optional<WarmupTracker> warmup_tracker_;
  sim::Rng rng_;

  State state_ = State::kIdle;
  PageId waiting_page_ = broadcast::kNoPage;
  sim::SimTime request_time_ = 0.0;
  bool waiting_unscheduled_ = false;

  // Robust pull engine (bdisk::fault); inert unless robust_ is engaged.
  std::optional<RobustPullOptions> robust_;
  sim::Rng retry_rng_{0};         // Dedicated jitter stream.
  std::uint32_t attempt_ = 0;     // Retries spent on the current request.
  double armed_timeout_ = 0.0;    // The timeout currently armed; 0 = none.
  bool pull_outstanding_ = false; // A robust pull awaits answer or timeout.
  std::uint32_t consecutive_failures_ = 0;
  bool backchannel_dead_ = false;
  sim::SimTime last_probe_time_ = 0.0;
  bool ever_probed_ = false;
  std::uint64_t timeouts_fired_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t backchannel_deaths_ = 0;
  std::uint64_t backchannel_recoveries_ = 0;
  // Scheduled-push wait (slots + transmission) predicted when the current
  // pull was sent; 0 when no pull is outstanding for a scheduled page.
  double predicted_push_wait_ = 0.0;
  double pull_wait_ratio_ = 0.0;

  bool recording_ = false;
  sim::RunningStats response_times_;
  // [0, 4 DbSize) spans everything short of pathological saturation: the
  // worst scheduled wait is one major cycle (< 3 DbSize for the paper's
  // flattest disk) and overflow is still counted and visible in exports.
  obs::LatencyHistogram response_histogram_;
  obs::TraceSink* sink_ = nullptr;
  obs::WindowedCollector* collector_ = nullptr;
  std::uint64_t total_accesses_ = 0;
  std::uint64_t pull_requests_sent_ = 0;
  std::uint64_t retries_sent_ = 0;
  std::uint64_t prefetches_ = 0;
  std::uint64_t invalidations_seen_ = 0;
  std::vector<double> probs_;  // Own access probabilities (prefetch value).
  std::function<void(double)> on_access_complete_;
};

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_MEASURED_CLIENT_H_
