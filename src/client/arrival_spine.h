#ifndef BDISK_CLIENT_ARRIVAL_SPINE_H_
#define BDISK_CLIENT_ARRIVAL_SPINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "broadcast/page.h"
#include "sim/rng.h"
#include "sim/types.h"
#include "workload/access_generator.h"
#include "workload/think_time.h"

namespace bdisk::client {

using broadcast::PageId;

/// SoA scratch for one chunk of batched virtual-client arrivals: parallel
/// timestamp / page / steady-coin columns, filled by FillArrivalBatch and
/// consumed by the classify pass. Sized once (one small chunk, reused for
/// every batch) so the drain never allocates.
struct ArrivalScratch {
  explicit ArrivalScratch(std::size_t capacity)
      : at(capacity), page(capacity), steady(capacity) {}

  std::size_t Capacity() const { return at.size(); }

  std::vector<sim::SimTime> at;
  std::vector<PageId> page;
  std::vector<std::uint8_t> steady;  // 0 or 1.
};

/// Fills `out` with consecutive arrivals drawn from `*next_arrival` up to
/// (and including) `horizon`, at most Capacity() of them. Returns the
/// count, advances `*next_arrival` past the last filled arrival (or to the
/// first arrival beyond the horizon), and leaves `rng` exactly where the
/// scalar loop would: per arrival the draw order is page (alias bucket +
/// acceptance), steady coin, think interval — the same interleaving as
/// VirtualClient's one-at-a-time path, so trajectories are bit-identical.
/// The RNG state lives in a local (register-resident) copy across the
/// loop; nothing else is read or written, so the batch is a pure function
/// of (rng, next_arrival).
inline std::size_t FillArrivalBatch(const workload::AccessGenerator& generator,
                                    const workload::ThinkTime& think,
                                    double steady_perc, sim::Rng& rng,
                                    sim::SimTime* next_arrival,
                                    sim::SimTime horizon,
                                    ArrivalScratch* out) {
  sim::Rng local = rng;
  sim::SimTime next = *next_arrival;
  const std::size_t capacity = out->Capacity();
  sim::SimTime* at = out->at.data();
  PageId* page = out->page.data();
  std::uint8_t* steady = out->steady.data();
  std::size_t n = 0;
  while (n < capacity && next <= horizon) {
    at[n] = next;
    page[n] = generator.Next(local);
    steady[n] = local.NextBernoulli(steady_perc) ? 1 : 0;
    next += think.Next(local);
    ++n;
  }
  rng = local;
  *next_arrival = next;
  return n;
}

/// `sim.arrival_spine = auto` resolution: on, unless the
/// BDISK_ARRIVAL_SPINE environment variable says "off". Read once per
/// process (same one-shot contract as sim::DefaultQueueKind).
bool DefaultArrivalSpineOn();

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_ARRIVAL_SPINE_H_
