#ifndef BDISK_CLIENT_VIRTUAL_CLIENT_H_
#define BDISK_CLIENT_VIRTUAL_CLIENT_H_

#include <cstdint>
#include <vector>

#include "client/threshold_filter.h"
#include "server/broadcast_server.h"
#include "server/update_generator.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "workload/access_generator.h"
#include "workload/access_pattern.h"
#include "workload/think_time.h"

namespace bdisk::client {

using broadcast::PageId;

/// Configuration of the virtual client.
struct VirtualClientOptions {
  /// Mean request inter-arrival time = mc_think_time / think_time_ratio
  /// (exponential). ThinkTimeRatio is the paper's server-load axis: the VC
  /// stands in for a population of ~ThinkTimeRatio clients running at the
  /// measured client's rate.
  double mc_think_time = 20.0;
  double think_time_ratio = 10.0;

  /// Fraction of represented clients in steady state (SteadyStatePerc).
  /// Steady-state requests are filtered through a fully warmed cache;
  /// warm-up requests always miss (§3.1).
  double steady_state_perc = 0.95;

  /// Threshold fraction applied to every request the VC submits.
  double thres_perc = 0.0;

  /// Cache size used to derive the warmed-cache contents.
  std::uint32_t cache_size = 100;
};

/// The Virtual Client (VC, §3.1): a single open-loop process standing in
/// for the whole client population other than the measured client.
///
/// Each arrival: draw a page from the canonical pattern; with probability
/// SteadyStatePerc treat the represented client as warmed-up — its cache
/// holds exactly the CacheSize highest-valued pages (the paper's own
/// steady-state assumption), so only misses against that fixed set reach
/// the backchannel; otherwise the represented client is warming up and
/// every access is a miss. All submitted requests pass the threshold
/// filter. The VC never blocks: it models aggregate *load*, so arrivals are
/// independent of service (this is what lets the server saturate and drop
/// requests, as the paper reports).
class VirtualClient : public sim::Process,
                      public server::InvalidationListener {
 public:
  /// `pattern` is the canonical (server-side) access pattern; `warm_pages`
  /// the ideal cache contents under the active value metric (PIX for
  /// push-based configurations, P for Pure-Pull).
  VirtualClient(sim::Simulator* simulator, server::BroadcastServer* server,
                const workload::AccessPattern& pattern,
                const std::vector<PageId>& warm_pages,
                const VirtualClientOptions& options, sim::Rng rng);

  /// Begins generating requests (first arrival after one think interval).
  void Start();

  /// Volatile-data extension: an update knocks the page out of the
  /// represented warm caches; the next steady-state access to it misses,
  /// reaches the server, and re-warms it (the population re-fetches).
  void OnInvalidate(PageId page, sim::SimTime now) override;

  /// Lifetime counters.
  std::uint64_t RequestsGenerated() const { return generated_; }
  std::uint64_t CacheHits() const { return cache_hits_; }
  std::uint64_t FilteredByThreshold() const { return filtered_; }
  std::uint64_t RequestsSubmitted() const { return submitted_; }

 protected:
  void OnWakeup() override;

 private:
  server::BroadcastServer* server_;
  workload::AccessGenerator generator_;
  workload::ThinkTime think_;
  VirtualClientOptions options_;
  ThresholdFilter filter_;
  std::vector<bool> warm_cached_;  // Currently valid warm copies.
  std::vector<bool> ideal_warm_;   // The warm set itself (never changes).
  sim::Rng rng_;

  std::uint64_t generated_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t submitted_ = 0;
};

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_VIRTUAL_CLIENT_H_
