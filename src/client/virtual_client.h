#ifndef BDISK_CLIENT_VIRTUAL_CLIENT_H_
#define BDISK_CLIENT_VIRTUAL_CLIENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "broadcast/distance_snapshot.h"
#include "broadcast/span_table.h"
#include "client/arrival_spine.h"
#include "client/threshold_filter.h"
#include "server/broadcast_server.h"
#include "server/update_generator.h"
#include "sim/byte_mask.h"
#include "sim/event_queue.h"
#include "sim/lazy_source.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/access_generator.h"
#include "workload/access_pattern.h"
#include "workload/think_time.h"

namespace bdisk::client {

using broadcast::PageId;

/// Configuration of the virtual client.
struct VirtualClientOptions {
  /// Mean request inter-arrival time = mc_think_time / think_time_ratio
  /// (exponential). ThinkTimeRatio is the paper's server-load axis: the VC
  /// stands in for a population of ~ThinkTimeRatio clients running at the
  /// measured client's rate.
  double mc_think_time = 20.0;
  double think_time_ratio = 10.0;

  /// Fraction of represented clients in steady state (SteadyStatePerc).
  /// Steady-state requests are filtered through a fully warmed cache;
  /// warm-up requests always miss (§3.1).
  double steady_state_perc = 0.95;

  /// Threshold fraction applied to every request the VC submits.
  double thres_perc = 0.0;

  /// Cache size used to derive the warmed-cache contents.
  std::uint32_t cache_size = 100;

  /// Fused (default): arrivals are batched through the simulator's
  /// lazy-source drain instead of costing one heap event each. Unfused
  /// reproduces the one-heap-event-per-arrival schedule exactly — kept as
  /// an A/B escape hatch (SystemConfig::vc_fusion). Either way the
  /// trajectory is bit-identical; see DESIGN.md, "The lazy-source
  /// contract".
  bool fused = true;

  /// Batched arrival spine (fused path only): drain arrivals through one
  /// register-resident draw+classify pass against a barrier-frozen
  /// distance snapshot instead of one-at-a-time. Bit-identical either way
  /// (SystemConfig::arrival_spine is the A/B knob); see DESIGN.md, "The
  /// batched arrival spine".
  bool spine = true;
};

/// The Virtual Client (VC, §3.1): a single open-loop process standing in
/// for the whole client population other than the measured client.
///
/// Each arrival: draw a page from the canonical pattern; with probability
/// SteadyStatePerc treat the represented client as warmed-up — its cache
/// holds exactly the CacheSize highest-valued pages (the paper's own
/// steady-state assumption), so only misses against that fixed set reach
/// the backchannel; otherwise the represented client is warming up and
/// every access is a miss. All submitted requests pass the threshold
/// filter. The VC never blocks: it models aggregate *load*, so arrivals are
/// independent of service (this is what lets the server saturate and drop
/// requests, as the paper reports).
///
/// Never blocking is also what makes the VC a valid lazy source: its next
/// arrival time depends only on its own RNG stream, and the state it reads
/// (schedule cursor, warm flags) changes only at drain barriers.
class VirtualClient : public sim::LazySource,
                      public sim::EventHandler,
                      public server::InvalidationListener {
 public:
  /// `pattern` is the canonical (server-side) access pattern; `warm_pages`
  /// the ideal cache contents under the active value metric (PIX for
  /// push-based configurations, P for Pure-Pull).
  VirtualClient(sim::Simulator* simulator, server::BroadcastServer* server,
                const workload::AccessPattern& pattern,
                const std::vector<PageId>& warm_pages,
                const VirtualClientOptions& options, sim::Rng rng);

  ~VirtualClient() override;

  VirtualClient(const VirtualClient&) = delete;
  VirtualClient& operator=(const VirtualClient&) = delete;

  /// Begins generating requests (first arrival after one think interval).
  void Start();

  /// Volatile-data extension: an update knocks the page out of the
  /// represented warm caches; the next steady-state access to it misses,
  /// reaches the server, and re-warms it (the population re-fetches).
  /// A barrier: arrivals up to `now` still see the page as warm.
  void OnInvalidate(PageId page, sim::SimTime now) override;

  /// LazySource: the pre-drawn time of the next arrival (kTimeNever before
  /// Start()).
  sim::SimTime NextArrivalTime() const override { return next_arrival_; }

  /// LazySource: processes every arrival with timestamp <= `horizon`.
  std::uint64_t CatchUp(sim::SimTime horizon) override;

  /// Lifetime counters.
  std::uint64_t RequestsGenerated() const { return generated_; }
  std::uint64_t CacheHits() const { return cache_hits_; }
  std::uint64_t FilteredByThreshold() const { return filtered_; }
  std::uint64_t RequestsSubmitted() const { return submitted_; }

  /// Introspection for the spine-bypass invariants: whether this VC runs
  /// fused, whether the batched spine is engaged (fused + spine option),
  /// and how many spine drains have run (0 whenever the spine is off or
  /// bypassed — e.g. fault.request_delay forcing the unfused path).
  bool Fused() const { return options_.fused; }
  bool SpineActive() const { return spine_; }
  std::uint64_t SpineBatches() const { return spine_batches_; }

 private:
  /// EventHandler: one unfused heap wakeup (escape-hatch path).
  void OnEvent() override;

  /// One arrival at time `now`: draw the page, the steady-state coin, and
  /// route through warm cache / threshold filter / backchannel.
  void ProcessArrival(sim::SimTime now);

  /// The two drain bodies behind CatchUp: the scalar reference loop and
  /// the batched spine (bit-identical; see DESIGN.md).
  std::uint64_t DrainScalar(sim::SimTime horizon);
  std::uint64_t DrainSpine(sim::SimTime horizon);

  sim::Simulator* simulator_;
  server::BroadcastServer* server_;
  workload::AccessGenerator generator_;
  workload::ThinkTime think_;
  VirtualClientOptions options_;
  ThresholdFilter filter_;
  sim::ByteMask warm_cached_;  // Currently valid warm copies.
  sim::ByteMask ideal_warm_;   // The warm set itself (never changes).
  sim::Rng rng_;

  sim::SimTime next_arrival_ = sim::kTimeNever;   // Fused path.
  bool registered_ = false;                       // Fused path.
  sim::EventId wakeup_ = sim::kInvalidEventId;    // Unfused path.

  // Spine state (only touched when spine_): the barrier-frozen distance
  // snapshot and the optional whole-cycle threshold-decision table (null
  // → fall back to the snapshot's memoized search).
  bool spine_ = false;
  broadcast::DistanceSnapshot snapshot_;
  std::unique_ptr<const broadcast::CycleSpanTable> span_table_;
  std::uint64_t spine_batches_ = 0;

  std::uint64_t generated_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t submitted_ = 0;
};

}  // namespace bdisk::client

#endif  // BDISK_CLIENT_VIRTUAL_CLIENT_H_
