#include "client/arrival_spine.h"

#include <cstdlib>
#include <string_view>

namespace bdisk::client {

bool DefaultArrivalSpineOn() {
  static const bool on = [] {
    const char* env = std::getenv("BDISK_ARRIVAL_SPINE");
    return env == nullptr || std::string_view(env) != "off";
  }();
  return on;
}

}  // namespace bdisk::client
