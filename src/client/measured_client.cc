#include "client/measured_client.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/check.h"
#include "transport/transport.h"

namespace bdisk::client {

MeasuredClient::MeasuredClient(
    sim::Simulator* simulator, server::BroadcastServer* server,
    const workload::AccessPattern& pattern,
    const MeasuredClientOptions& options, sim::Rng rng,
    std::optional<std::vector<PageId>> warmup_target)
    : sim::Process(simulator),
      server_(server),
      generator_(pattern),
      options_(options),
      filter_(options.thres_perc, server->program().Length()),
      rng_(rng),
      response_histogram_(0.0, 4.0 * server->program().DbSize(), 1024),
      probs_(pattern.probs()) {
  BDISK_CHECK_MSG(server != nullptr, "client needs a server");
  BDISK_CHECK_MSG(options.think_time > 0.0, "think time must be positive");
  BDISK_CHECK_MSG(pattern.DbSize() == server->program().DbSize(),
                  "client pattern and server database sizes disagree");
  BDISK_CHECK_MSG(!options.prefetch || !server->program().Empty(),
                  "PT prefetching needs a push program to prefetch from");
  cache_ = std::make_unique<cache::Cache>(
      options.cache_size, server->program().DbSize(),
      cache::MakePolicy(options.policy, pattern.probs(), &server->program()));
  if (warmup_target.has_value()) {
    warmup_tracker_.emplace(*warmup_target, server->program().DbSize());
  }
  server_->AddListener(this);
}

void MeasuredClient::Start() {
  BDISK_CHECK_MSG(state_ == State::kIdle, "client already started");
  MakeRequest();
}

void MeasuredClient::EnableRobustness(const RobustPullOptions& options,
                                      sim::Rng rng) {
  BDISK_CHECK_MSG(state_ == State::kIdle,
                  "enable robustness before Start()");
  BDISK_CHECK_MSG(options.timeout > 0.0, "robust timeout must be positive");
  BDISK_CHECK_MSG(options.backoff >= 1.0, "robust backoff must be >= 1");
  BDISK_CHECK_MSG(options.backoff_cap >= options.timeout,
                  "robust backoff cap below the base timeout");
  BDISK_CHECK_MSG(options.jitter >= 0.0 && options.jitter <= 1.0,
                  "robust jitter must be a fraction in [0,1]");
  BDISK_CHECK_MSG(options.probe_interval > 0.0,
                  "robust probe interval must be positive");
  robust_ = options;
  retry_rng_ = rng;
}

void MeasuredClient::SetThresPerc(double thres_perc) {
  options_.thres_perc = thres_perc;
  filter_ = ThresholdFilter(thres_perc, server_->program().Length());
}

void MeasuredClient::EnableMetrics(obs::MetricsRegistry* registry) {
  BDISK_CHECK_MSG(registry != nullptr, "EnableMetrics needs a registry");
  cache_->SetEvictionValueStats(
      registry->GetStats("client.mc.cache.evict_value"));
}

void MeasuredClient::OnWakeup() {
  // Barrier: both branches submit to the shared pull queue (and record
  // trace events at Now()); fused virtual-client arrivals up to now must
  // land first.
  simulator()->CatchUpLazySources();
  switch (state_) {
    case State::kThinking:
      MakeRequest();
      return;
    case State::kWaiting:
      if (robust_) {
        OnRobustTimeout();
        return;
      }
      // Legacy retry timer: our earlier pull for an unscheduled page may
      // have been dropped (we get no feedback); resend and re-arm.
      BDISK_DCHECK(waiting_unscheduled_ && options_.retry_interval > 0.0);
      if (options_.use_backchannel) {
        if (sink_ != nullptr) {
          sink_->Record(Now(), obs::SpanEvent::kRetry, obs::kMeasuredClientId,
                        waiting_page_);
        }
        SubmitPull(waiting_page_);
        ++retries_sent_;
      }
      ScheduleWakeup(options_.retry_interval);
      return;
    case State::kIdle:
      BDISK_CHECK_MSG(false, "wakeup while idle");
  }
}

void MeasuredClient::MakeRequest() {
  obs::PhaseScope prof(simulator()->phase_profiler(),
                       obs::Phase::kMcRequest);
  const PageId page = generator_.Next(rng_);
  ++total_accesses_;
  if (sink_ != nullptr) {
    sink_->Record(Now(), obs::SpanEvent::kRequest, obs::kMeasuredClientId,
                  page);
  }
  if (cache_->Access(page)) {
    if (sink_ != nullptr) {
      sink_->Record(Now(), obs::SpanEvent::kCacheHit, obs::kMeasuredClientId,
                    page);
    }
    CompleteAccess(0.0);
    return;
  }
  if (sink_ != nullptr) {
    sink_->Record(Now(), obs::SpanEvent::kCacheMiss, obs::kMeasuredClientId,
                  page);
  }
  state_ = State::kWaiting;
  waiting_page_ = page;
  request_time_ = Now();
  const std::uint32_t distance = server_->DistanceToNextPush(page);
  waiting_unscheduled_ =
      (distance == broadcast::BroadcastProgram::kNeverBroadcast);
  // A client with no backchannel can only ever obtain scheduled pages.
  BDISK_CHECK_MSG(options_.use_backchannel || !waiting_unscheduled_,
                  "push-only client blocked on a page that is never pushed");
  predicted_push_wait_ = 0.0;
  if (options_.use_backchannel && filter_.ShouldPull(distance)) {
    bool send = true;
    if (robust_ && backchannel_dead_ && !waiting_unscheduled_ &&
        ever_probed_ &&
        Now() - last_probe_time_ < robust_->probe_interval) {
      // Dead backchannel, probe budget spent: scheduled pages lean on the
      // push safety net instead of wasting a pull. Unscheduled pages never
      // take this branch — pull is their only path.
      send = false;
      ++fallbacks_;
      if (sink_ != nullptr) {
        sink_->Record(Now(), obs::SpanEvent::kFallback,
                      obs::kMeasuredClientId, page);
      }
    }
    if (send) {
      if (robust_) {
        SendRobustPull(page);
      } else {
        SubmitPull(page);
        ++pull_requests_sent_;
      }
      if (!waiting_unscheduled_) {
        // +1: the transmission slot. Push slots are a lower bound on real
        // time (interleaved pulls delay the schedule), making the ratio a
        // slightly optimistic saturation signal — which is the safe side.
        predicted_push_wait_ = static_cast<double>(distance) + 1.0;
      }
    }
  } else if (options_.use_backchannel && sink_ != nullptr) {
    sink_->Record(Now(), obs::SpanEvent::kSubmitFiltered,
                  obs::kMeasuredClientId, page,
                  static_cast<double>(distance));
  }
  if (!robust_ && waiting_unscheduled_ && options_.retry_interval > 0.0) {
    ScheduleWakeup(options_.retry_interval);
  }
}

void MeasuredClient::SubmitPull(PageId page) {
  if (transport_ != nullptr) {
    transport_->SubmitPull(page, obs::kMeasuredClientId);
    return;
  }
  server_->SubmitRequest(page, obs::kMeasuredClientId);
}

void MeasuredClient::SendRobustPull(PageId page) {
  SubmitPull(page);
  ++pull_requests_sent_;
  if (backchannel_dead_) {
    ++probes_sent_;
    last_probe_time_ = Now();
    ever_probed_ = true;
  }
  attempt_ = 0;
  pull_outstanding_ = true;
  ArmRobustTimeout();
}

void MeasuredClient::ArmRobustTimeout() {
  // Shared backoff engine (fault/backoff.h): scale by attempt, clamp to the
  // cap, stretch by deterministic jitter from the dedicated stream. The
  // same policy arithmetic paces datagram-transport reconnects.
  const fault::BackoffPolicy policy{robust_->timeout, robust_->backoff,
                                    robust_->backoff_cap, robust_->jitter};
  armed_timeout_ = fault::JitteredBackoffDelay(policy, attempt_, &retry_rng_);
  ScheduleWakeup(armed_timeout_);
}

void MeasuredClient::OnRobustTimeout() {
  ++timeouts_fired_;
  if (sink_ != nullptr) {
    sink_->Record(Now(), obs::SpanEvent::kTimeout, obs::kMeasuredClientId,
                  waiting_page_, armed_timeout_);
  }
  armed_timeout_ = 0.0;
  if (attempt_ < robust_->max_retries) {
    ++attempt_;
    if (sink_ != nullptr) {
      sink_->Record(Now(), obs::SpanEvent::kRetry, obs::kMeasuredClientId,
                    waiting_page_);
    }
    SubmitPull(waiting_page_);
    ++retries_sent_;
    if (backchannel_dead_) {
      ++probes_sent_;
      last_probe_time_ = Now();
      ever_probed_ = true;
    }
    ArmRobustTimeout();
    return;
  }
  // Retry budget spent: the whole request failed on the backchannel.
  pull_outstanding_ = false;
  ++consecutive_failures_;
  if (!backchannel_dead_ && robust_->dead_threshold > 0 &&
      consecutive_failures_ >= robust_->dead_threshold) {
    backchannel_dead_ = true;
    ++backchannel_deaths_;
  }
  if (waiting_unscheduled_) {
    // No push safety net exists for this page: resolve the request with an
    // explicit timeout rather than hanging forever. The elapsed time is
    // the access's (poor) response time — visible in the tail, not hidden.
    const double elapsed = Now() - request_time_;
    ++abandoned_;
    if (sink_ != nullptr) {
      sink_->Record(Now(), obs::SpanEvent::kAbandon, obs::kMeasuredClientId,
                    waiting_page_, elapsed);
    }
    CompleteAccess(elapsed);
    return;
  }
  // Scheduled page: fall back to waiting on the broadcast. No more timers;
  // the periodic schedule delivers within one major cycle.
  ++fallbacks_;
  if (sink_ != nullptr) {
    sink_->Record(Now(), obs::SpanEvent::kFallback, obs::kMeasuredClientId,
                  waiting_page_);
  }
}

void MeasuredClient::CompleteAccess(double response_time) {
  if (recording_) {
    response_times_.Add(response_time);
    response_histogram_.Add(response_time);
  }
  if (collector_ != nullptr) collector_->OnResponse(Now(), response_time);
  state_ = State::kThinking;
  waiting_page_ = broadcast::kNoPage;
  ScheduleWakeup(options_.think_time);
  if (on_access_complete_) on_access_complete_(response_time);
}

void MeasuredClient::OnBroadcast(PageId page, server::SlotKind kind,
                                 sim::SimTime now) {
  obs::PhaseScope prof(simulator()->phase_profiler(),
                       obs::Phase::kMcDelivery);
  if (robust_ && backchannel_dead_ && kind == server::SlotKind::kPull) {
    // Snooped proof of life: a pull slot means the server is answering
    // requests again — revive the backchannel for everyone listening.
    backchannel_dead_ = false;
    consecutive_failures_ = 0;
    ++backchannel_recoveries_;
  }
  if (state_ == State::kWaiting && page == waiting_page_) {
    if (predicted_push_wait_ > 0.0) {
      // A wait below one transmission time means the page was already in
      // flight when we asked — luck, not evidence about server health;
      // skip the sample.
      const double wait = now - request_time_;
      if (wait >= 1.0) {
        constexpr double kAlpha = 0.05;
        const double ratio = std::min(1.0, wait / predicted_push_wait_);
        pull_wait_ratio_ =
            pull_wait_ratio_ == 0.0
                ? ratio
                : kAlpha * ratio + (1.0 - kAlpha) * pull_wait_ratio_;
      }
      predicted_push_wait_ = 0.0;
    }
    InsertIntoCache(page, now);
    CancelWakeup();  // Disarm any pending retry/timeout timer.
    if (robust_) {
      // A delivery while our pull was live counts as backchannel success;
      // a delivery after fallback proves nothing about it.
      if (pull_outstanding_) consecutive_failures_ = 0;
      pull_outstanding_ = false;
      attempt_ = 0;
      armed_timeout_ = 0.0;
    }
    if (sink_ != nullptr) {
      sink_->Record(now, obs::SpanEvent::kDelivery, obs::kMeasuredClientId,
                    page, now - request_time_);
    }
    CompleteAccess(now - request_time_);
    return;
  }
  if (options_.prefetch) ConsiderPrefetch(page, now);
}

void MeasuredClient::OnInvalidate(PageId page, sim::SimTime now) {
  ++invalidations_seen_;
  if (cache_->Remove(page)) {
    if (sink_ != nullptr) {
      sink_->Record(now, obs::SpanEvent::kInvalidate, obs::kMeasuredClientId,
                    page);
    }
    if (warmup_tracker_) warmup_tracker_->OnEvict(page, now);
  }
}

void MeasuredClient::InsertIntoCache(PageId page, sim::SimTime now) {
  const std::optional<PageId> evicted = cache_->Insert(page);
  if (warmup_tracker_) {
    if (evicted.has_value()) warmup_tracker_->OnEvict(*evicted, now);
    warmup_tracker_->OnInsert(page, now);
  }
}

void MeasuredClient::ConsiderPrefetch(PageId page, sim::SimTime now) {
  if (cache_->Contains(page)) return;
  if (!cache_->IsFull()) {
    InsertIntoCache(page, now);
    ++prefetches_;
    return;
  }
  const broadcast::BroadcastProgram& program = server_->program();
  const double cycle = static_cast<double>(program.Length());
  // The passing page just went by: its next arrival is one full gap away.
  const std::uint32_t freq = program.Frequency(page);
  BDISK_DCHECK(freq > 0);  // It was on the broadcast just now.
  const double pt_in =
      probs_[page] * (cycle / static_cast<double>(freq));

  // Victim: the resident page with the lowest p*t, t = time until it can
  // be re-read from the broadcast. Unscheduled residents can't be re-read
  // (pull only), so they get t = 2 cycles and rarely lose their slot.
  double pt_min = std::numeric_limits<double>::infinity();
  PageId victim = broadcast::kNoPage;
  const sim::ByteMask& mask = cache_->resident_mask();
  for (PageId r = 0; r < mask.size(); ++r) {
    if (!mask[r]) continue;
    const std::uint32_t distance = server_->DistanceToNextPush(r);
    const double t =
        distance == broadcast::BroadcastProgram::kNeverBroadcast
            ? 2.0 * cycle
            : static_cast<double>(distance) + 1.0;
    const double pt = probs_[r] * t;
    if (pt < pt_min) {
      pt_min = pt;
      victim = r;
    }
  }
  if (pt_in > pt_min) {
    cache_->Remove(victim);
    if (warmup_tracker_) warmup_tracker_->OnEvict(victim, now);
    InsertIntoCache(page, now);
    ++prefetches_;
  }
}

}  // namespace bdisk::client
