#include "client/virtual_client.h"

#include "sim/check.h"

namespace bdisk::client {

VirtualClient::VirtualClient(sim::Simulator* simulator,
                             server::BroadcastServer* server,
                             const workload::AccessPattern& pattern,
                             const std::vector<PageId>& warm_pages,
                             const VirtualClientOptions& options, sim::Rng rng)
    : sim::Process(simulator),
      server_(server),
      generator_(pattern),
      think_(workload::ThinkTime::Exponential(options.mc_think_time /
                                              options.think_time_ratio)),
      options_(options),
      filter_(options.thres_perc, server->program().Length()),
      warm_cached_(pattern.DbSize(), false),
      ideal_warm_(pattern.DbSize(), false),
      rng_(rng) {
  BDISK_CHECK_MSG(server != nullptr, "client needs a server");
  BDISK_CHECK_MSG(options.think_time_ratio > 0.0,
                  "ThinkTimeRatio must be positive");
  BDISK_CHECK_MSG(options.steady_state_perc >= 0.0 &&
                      options.steady_state_perc <= 1.0,
                  "SteadyStatePerc must be a fraction in [0,1]");
  BDISK_CHECK_MSG(warm_pages.size() == options.cache_size,
                  "warmed cache must contain exactly CacheSize pages");
  for (const PageId p : warm_pages) {
    BDISK_CHECK_MSG(p < pattern.DbSize(), "warm page out of range");
    warm_cached_[p] = true;
    ideal_warm_[p] = true;
  }
}

void VirtualClient::OnInvalidate(PageId page, sim::SimTime /*now*/) {
  warm_cached_[page] = false;
}

void VirtualClient::Start() { ScheduleWakeup(think_.Next(rng_)); }

void VirtualClient::OnWakeup() {
  const PageId page = generator_.Next(rng_);
  ++generated_;
  // SteadyStatePerc coin: does this arrival come from a warmed-up client
  // (filter through the ideal cache) or a warming-up one (always a miss)?
  const bool steady = rng_.NextBernoulli(options_.steady_state_perc);
  if (steady && warm_cached_[page]) {
    ++cache_hits_;
  } else if (!filter_.ShouldPull(server_->DistanceToNextPush(page))) {
    ++filtered_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  } else {
    server_->SubmitRequest(page, obs::kVirtualClientId);
    ++submitted_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  }
  ScheduleWakeup(think_.Next(rng_));
}

}  // namespace bdisk::client
