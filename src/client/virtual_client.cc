#include "client/virtual_client.h"

#include "sim/check.h"

namespace bdisk::client {

VirtualClient::VirtualClient(sim::Simulator* simulator,
                             server::BroadcastServer* server,
                             const workload::AccessPattern& pattern,
                             const std::vector<PageId>& warm_pages,
                             const VirtualClientOptions& options, sim::Rng rng)
    : simulator_(simulator),
      server_(server),
      generator_(pattern),
      think_(workload::ThinkTime::Exponential(options.mc_think_time /
                                              options.think_time_ratio)),
      options_(options),
      filter_(options.thres_perc, server->program().Length()),
      warm_cached_(pattern.DbSize(), false),
      ideal_warm_(pattern.DbSize(), false),
      rng_(rng),
      spine_(options.fused && options.spine),
      snapshot_(server->program()) {
  BDISK_CHECK_MSG(simulator != nullptr, "client needs a simulator");
  BDISK_CHECK_MSG(server != nullptr, "client needs a server");
  BDISK_CHECK_MSG(options.think_time_ratio > 0.0,
                  "ThinkTimeRatio must be positive");
  BDISK_CHECK_MSG(options.steady_state_perc >= 0.0 &&
                      options.steady_state_perc <= 1.0,
                  "SteadyStatePerc must be a fraction in [0,1]");
  BDISK_CHECK_MSG(warm_pages.size() == options.cache_size,
                  "warmed cache must contain exactly CacheSize pages");
  for (const PageId p : warm_pages) {
    BDISK_CHECK_MSG(p < pattern.DbSize(), "warm page out of range");
    warm_cached_[p] = true;
    ideal_warm_[p] = true;
  }
  if (spine_) {
    // Whole-cycle threshold-decision table: one bit test per arrival
    // instead of an occurrence search. Null (empty program, or a
    // degenerate cycle too large for the bitset) falls back to the
    // snapshot's memoized per-page search.
    span_table_ = broadcast::CycleSpanTable::BuildIfFeasible(
        server->program(), filter_.ThresholdSlots());
  }
}

VirtualClient::~VirtualClient() {
  if (registered_) simulator_->UnregisterLazySource(this);
  if (wakeup_ != sim::kInvalidEventId) simulator_->Cancel(wakeup_);
}

void VirtualClient::Start() {
  // Both paths draw the first think interval here, so the RNG stream is
  // consumed at the same point regardless of fusion.
  const sim::SimTime first = think_.Next(rng_);
  if (options_.fused) {
    next_arrival_ = simulator_->Now() + first;
    simulator_->RegisterLazySource(this);
    registered_ = true;
  } else {
    wakeup_ = simulator_->ScheduleAfter(first, this);
  }
}

void VirtualClient::OnInvalidate(PageId page, sim::SimTime /*now*/) {
  // Barrier: arrivals strictly before the update must filter through the
  // still-warm copy, so drain before clearing the flag.
  simulator_->CatchUpLazySources();
  warm_cached_[page] = false;
}

std::uint64_t VirtualClient::CatchUp(sim::SimTime horizon) {
  if (next_arrival_ > horizon) return 0;
  // The VC arrival hot path (ROADMAP): one frame per non-empty drain,
  // arrivals as ops — never a per-arrival timestamp. The frame semantics
  // are identical for the scalar and spine drains.
  obs::PhaseScope prof(simulator_->phase_profiler(),
                       obs::Phase::kVcArrival);
  const std::uint64_t processed =
      spine_ ? DrainSpine(horizon) : DrainScalar(horizon);
  prof.AddOps(processed);
  return processed;
}

std::uint64_t VirtualClient::DrainScalar(sim::SimTime horizon) {
  std::uint64_t processed = 0;
  while (next_arrival_ <= horizon) {
    const sim::SimTime at = next_arrival_;
    ProcessArrival(at);
    next_arrival_ = at + think_.Next(rng_);
    ++processed;
  }
  return processed;
}

std::uint64_t VirtualClient::DrainSpine(sim::SimTime horizon) {
  ++spine_batches_;
  // Barrier-frozen snapshot: the cursor cannot move during a drain (it
  // only advances in the server's slot decision, which runs after the
  // CatchUpLazySources barrier), so one position serves the whole batch —
  // and, via the epoch memo, consecutive drains within the same slot.
  snapshot_.Freeze(server_->SchedulePosition());
  const std::uint32_t pos = snapshot_.Position();
  const broadcast::CycleSpanTable* table = span_table_.get();
  const std::uint8_t* ideal = ideal_warm_.data();
  std::uint8_t* warm = warm_cached_.data();
  const double steady_perc = options_.steady_state_perc;
  // The VC's think time is always exponential (see the ctor); drawing
  // through NextExponential directly skips ThinkTime's per-draw kind
  // branch without touching the draw stream.
  const double think_mean = think_.Mean();
  // Fused draw+classify pass. The RNG state and the arrival clock live in
  // locals (registers) for the whole drain — FillArrivalBatch's bulk-draw
  // loop with the classify folded in, which measures faster than filling
  // SoA scratch and re-walking it (the columns' store/reload round-trip
  // costs more than the classify saves; the draw order per arrival —
  // page, steady coin, think — is the same either way). Arrivals stay
  // sequential because warm re-fetches are order-dependent: an arrival
  // can re-warm a page a later arrival in the same drain then hits. Only
  // the rare submit arrivals (typically a few percent) take the call into
  // the server, in timestamp order.
  sim::Rng local = rng_;
  sim::SimTime next = next_arrival_;
  std::uint64_t processed = 0;
  std::uint64_t hits = 0;
  std::uint64_t filtered = 0;
  while (next <= horizon) {
    const sim::SimTime at = next;
    const PageId page = generator_.Next(local);
    const unsigned s = local.NextBernoulli(steady_perc) ? 1U : 0U;
    next = at + local.NextExponential(think_mean);
    const unsigned w = warm[page];
    const unsigned hit = s & w;
    const unsigned miss = hit ^ 1U;
    const unsigned pull =
        table != nullptr
            ? static_cast<unsigned>(table->ShouldPull(page, pos))
            : static_cast<unsigned>(
                  filter_.ShouldPull(snapshot_.Distance(page)));
    hits += hit;
    filtered += miss & (pull ^ 1U);
    // Steady misses re-fetch: the page re-enters the represented warm
    // caches iff it belongs to the warm set. (warm ⊆ ideal always, so
    // OR-ing the re-fetch bit equals the scalar path's assignment.)
    warm[page] = static_cast<std::uint8_t>(w | (miss & s & ideal[page]));
    if ((miss & pull) != 0U) {
      // SubmitRequestAt never re-enters the VC (it does not drain lazy
      // sources), so the register-resident locals stay coherent.
      server_->SubmitRequestAt(page, obs::kVirtualClientId, at);
      ++submitted_;
    }
    ++processed;
  }
  rng_ = local;
  next_arrival_ = next;
  generated_ += processed;
  cache_hits_ += hits;
  filtered_ += filtered;
  return processed;
}

void VirtualClient::OnEvent() {
  obs::PhaseScope prof(simulator_->phase_profiler(),
                       obs::Phase::kVcArrival);
  prof.AddOps(1);
  const sim::SimTime now = simulator_->Now();
  ProcessArrival(now);
  wakeup_ = simulator_->ScheduleAfter(think_.Next(rng_), this);
}

void VirtualClient::ProcessArrival(sim::SimTime now) {
  const PageId page = generator_.Next(rng_);
  ++generated_;
  // SteadyStatePerc coin: does this arrival come from a warmed-up client
  // (filter through the ideal cache) or a warming-up one (always a miss)?
  const bool steady = rng_.NextBernoulli(options_.steady_state_perc);
  if (steady && warm_cached_[page]) {
    ++cache_hits_;
  } else if (!filter_.ShouldPull(server_->DistanceToNextPush(page))) {
    ++filtered_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  } else {
    // SubmitRequestAt: a fused arrival is drained at a later barrier, but
    // its trace record must carry its own arrival time.
    server_->SubmitRequestAt(page, obs::kVirtualClientId, now);
    ++submitted_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  }
}

}  // namespace bdisk::client
