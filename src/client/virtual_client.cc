#include "client/virtual_client.h"

#include "sim/check.h"

namespace bdisk::client {

VirtualClient::VirtualClient(sim::Simulator* simulator,
                             server::BroadcastServer* server,
                             const workload::AccessPattern& pattern,
                             const std::vector<PageId>& warm_pages,
                             const VirtualClientOptions& options, sim::Rng rng)
    : simulator_(simulator),
      server_(server),
      generator_(pattern),
      think_(workload::ThinkTime::Exponential(options.mc_think_time /
                                              options.think_time_ratio)),
      options_(options),
      filter_(options.thres_perc, server->program().Length()),
      warm_cached_(pattern.DbSize(), false),
      ideal_warm_(pattern.DbSize(), false),
      rng_(rng) {
  BDISK_CHECK_MSG(simulator != nullptr, "client needs a simulator");
  BDISK_CHECK_MSG(server != nullptr, "client needs a server");
  BDISK_CHECK_MSG(options.think_time_ratio > 0.0,
                  "ThinkTimeRatio must be positive");
  BDISK_CHECK_MSG(options.steady_state_perc >= 0.0 &&
                      options.steady_state_perc <= 1.0,
                  "SteadyStatePerc must be a fraction in [0,1]");
  BDISK_CHECK_MSG(warm_pages.size() == options.cache_size,
                  "warmed cache must contain exactly CacheSize pages");
  for (const PageId p : warm_pages) {
    BDISK_CHECK_MSG(p < pattern.DbSize(), "warm page out of range");
    warm_cached_[p] = true;
    ideal_warm_[p] = true;
  }
}

VirtualClient::~VirtualClient() {
  if (registered_) simulator_->UnregisterLazySource(this);
  if (wakeup_ != sim::kInvalidEventId) simulator_->Cancel(wakeup_);
}

void VirtualClient::Start() {
  // Both paths draw the first think interval here, so the RNG stream is
  // consumed at the same point regardless of fusion.
  const sim::SimTime first = think_.Next(rng_);
  if (options_.fused) {
    next_arrival_ = simulator_->Now() + first;
    simulator_->RegisterLazySource(this);
    registered_ = true;
  } else {
    wakeup_ = simulator_->ScheduleAfter(first, this);
  }
}

void VirtualClient::OnInvalidate(PageId page, sim::SimTime /*now*/) {
  // Barrier: arrivals strictly before the update must filter through the
  // still-warm copy, so drain before clearing the flag.
  simulator_->CatchUpLazySources();
  warm_cached_[page] = false;
}

std::uint64_t VirtualClient::CatchUp(sim::SimTime horizon) {
  if (next_arrival_ > horizon) return 0;
  // The ~41 ns/arrival hot path (ROADMAP): one frame per non-empty drain,
  // arrivals as ops — never a per-arrival timestamp.
  obs::PhaseScope prof(simulator_->phase_profiler(),
                       obs::Phase::kVcArrival);
  std::uint64_t processed = 0;
  while (next_arrival_ <= horizon) {
    const sim::SimTime at = next_arrival_;
    ProcessArrival(at);
    next_arrival_ = at + think_.Next(rng_);
    ++processed;
  }
  prof.AddOps(processed);
  return processed;
}

void VirtualClient::OnEvent() {
  obs::PhaseScope prof(simulator_->phase_profiler(),
                       obs::Phase::kVcArrival);
  prof.AddOps(1);
  const sim::SimTime now = simulator_->Now();
  ProcessArrival(now);
  wakeup_ = simulator_->ScheduleAfter(think_.Next(rng_), this);
}

void VirtualClient::ProcessArrival(sim::SimTime now) {
  const PageId page = generator_.Next(rng_);
  ++generated_;
  // SteadyStatePerc coin: does this arrival come from a warmed-up client
  // (filter through the ideal cache) or a warming-up one (always a miss)?
  const bool steady = rng_.NextBernoulli(options_.steady_state_perc);
  if (steady && warm_cached_[page]) {
    ++cache_hits_;
  } else if (!filter_.ShouldPull(server_->DistanceToNextPush(page))) {
    ++filtered_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  } else {
    // SubmitRequestAt: a fused arrival is drained at a later barrier, but
    // its trace record must carry its own arrival time.
    server_->SubmitRequestAt(page, obs::kVirtualClientId, now);
    ++submitted_;
    if (steady) warm_cached_[page] = ideal_warm_[page];  // Re-fetched.
  }
}

}  // namespace bdisk::client
