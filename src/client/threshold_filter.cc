#include "client/threshold_filter.h"

#include <cmath>

#include "sim/check.h"

namespace bdisk::client {

ThresholdFilter::ThresholdFilter(double thres_perc,
                                 std::uint32_t major_cycle_len) {
  BDISK_CHECK_MSG(thres_perc >= 0.0 && thres_perc <= 1.0,
                  "ThresPerc must be a fraction in [0,1]");
  threshold_slots_ = static_cast<std::uint32_t>(
      std::llround(thres_perc * static_cast<double>(major_cycle_len)));
}

}  // namespace bdisk::client
