// Figure 3: steady-state client performance vs server load.
//   (a) Push flat; Pure-Pull and IPP (PullBW=50%) each at
//       SteadyStatePerc 0% and 95%.
//   (b) IPP PullBW in {10,30,50}% at SteadyStatePerc=95%, vs the pure
//       algorithms.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Figure 3",
                     "Steady-state response time vs ThinkTimeRatio.");

  // ---------------------------------------------------------- Figure 3(a)
  std::vector<core::SweepPoint> points_a;
  for (const double ttr : bench::PaperTtrSweep()) {
    points_a.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
    for (const double ssp : {0.0, 0.95}) {
      const std::string suffix =
          ssp == 0.0 ? " ss0%" : " ss95%";
      points_a.push_back(bench::MakePoint("Pull" + suffix, ttr,
                                          DeliveryMode::kPurePull, ttr, 1.0,
                                          0.0, ssp));
      points_a.push_back(bench::MakePoint("IPP" + suffix, ttr,
                                          DeliveryMode::kIpp, ttr, 0.5, 0.0,
                                          ssp));
    }
  }
  const auto outcomes_a =
      bench::RunSweep(points_a, bench::BenchSteadyProtocol());
  std::printf("Figure 3(a): IPP PullBW=50%%, SteadyStatePerc varied\n");
  bench::PrintResponseTable("ThinkTimeRatio", outcomes_a);
  std::printf(
      "Paper shape: Push flat; pull-based curves start ~2 units, cross Push\n"
      "around TTR 50, and saturate high; 95%% steady-state curves sit below\n"
      "their 0%% counterparts; IPP levels off below Pure-Pull at the right.\n\n");

  // ---------------------------------------------------------- Figure 3(b)
  std::vector<core::SweepPoint> points_b;
  for (const double ttr : bench::PaperTtrSweep()) {
    points_b.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
    points_b.push_back(bench::MakePoint("Pull", ttr, DeliveryMode::kPurePull,
                                        ttr, 1.0));
    for (const double bw : {0.1, 0.3, 0.5}) {
      char label[32];
      std::snprintf(label, sizeof(label), "IPP bw%.0f%%", bw * 100);
      points_b.push_back(
          bench::MakePoint(label, ttr, DeliveryMode::kIpp, ttr, bw));
    }
  }
  const auto outcomes_b =
      bench::RunSweep(points_b, bench::BenchSteadyProtocol());
  std::printf("Figure 3(b): IPP PullBW varied, SteadyStatePerc=95%%\n");
  bench::PrintResponseTable("ThinkTimeRatio", outcomes_b);
  std::printf(
      "Paper shape: higher PullBW tracks Pure-Pull (good left, bad right);\n"
      "lower PullBW flattens toward Push; PullBW=10%% is worse than Push\n"
      "even at light load (it starves pulls while slowing the disk 10%%).\n");
  return 0;
}
