// Figure 4: client cache warm-up time, IPP PullBW = 50%.
//   (a) ThinkTimeRatio = 25 (light load)   (b) ThinkTimeRatio = 250 (heavy).
// Curves: Push; Pull and IPP at SteadyStatePerc 0% and 95%.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner(
      "Figure 4",
      "Time for a cold client cache to reach X% of its ideal contents.");

  for (const double ttr : {25.0, 250.0}) {
    std::vector<core::SweepPoint> points;
    points.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
    for (const double ssp : {0.0, 0.95}) {
      const std::string suffix = ssp == 0.0 ? " ss0%" : " ss95%";
      points.push_back(bench::MakePoint("Pull" + suffix, ttr,
                                        DeliveryMode::kPurePull, ttr, 1.0,
                                        0.0, ssp));
      points.push_back(bench::MakePoint("IPP" + suffix, ttr,
                                        DeliveryMode::kIpp, ttr, 0.5, 0.0,
                                        ssp));
    }
    for (auto& point : points) point.warmup_run = true;

    const auto outcomes = bench::RunSweep(points, {},
                                         bench::BenchWarmupProtocol());
    std::printf("Figure 4(%c): ThinkTimeRatio = %.0f\n",
                ttr == 25.0 ? 'a' : 'b', ttr);
    bench::PrintWarmupTable(outcomes);
    std::printf("\n");
  }
  std::printf(
      "Paper shape: at TTR=25 Pure-Pull warms fastest and Push slowest; at\n"
      "TTR=250 the order inverts — the saturated server drops requests, so\n"
      "the periodic broadcast fills caches faster than the backchannel.\n");
  return 0;
}
