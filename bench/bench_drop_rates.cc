// Quoted drop-rate observations from the paper's prose (§4.1.2, §4.2):
//
//  * PullBW=10%, TTR=10: "58% of the pull requests are dropped".
//  * TTR=50: IPP (PullBW=50%) drops "68.8%" vs Pure-Pull "39.9%".
//  * PullBW=30%, ThresPerc=25%, TTR=25: "the server drops 9.4%".
//
// This bench reproduces those observations as a table (shape, not exact
// values) plus a full drop-rate sweep for context.

#include <cstdio>

#include "core/table_printer.h"
#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Drop rates (§4.1.2 / §4.2 prose)",
                     "Server request-drop percentages at quoted settings.");

  std::vector<core::SweepPoint> quoted;
  quoted.push_back(
      bench::MakePoint("IPP bw10%", 10, DeliveryMode::kIpp, 10, 0.1));
  quoted.push_back(
      bench::MakePoint("IPP bw50%", 50, DeliveryMode::kIpp, 50, 0.5));
  quoted.push_back(
      bench::MakePoint("Pull", 50, DeliveryMode::kPurePull, 50, 1.0));
  quoted.push_back(bench::MakePoint("IPP bw30% t25%", 25,
                                    DeliveryMode::kIpp, 25, 0.3, 0.25));
  const auto outcomes = bench::RunSweep(quoted, bench::BenchSteadyProtocol());

  core::TablePrinter table(
      {"setting", "TTR", "paper drop%", "measured drop%"});
  const char* expected[] = {"58.0", "68.8", "39.9", "9.4"};
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    table.AddRow({outcomes[i].point.curve,
                  core::TablePrinter::Fmt(outcomes[i].point.x, 0),
                  expected[i],
                  core::TablePrinter::Fmt(
                      outcomes[i].result.drop_rate * 100.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Context: drop rate vs load for the three algorithms.
  std::vector<core::SweepPoint> sweep;
  for (const double ttr : bench::PaperTtrSweep()) {
    sweep.push_back(
        bench::MakePoint("Pull", ttr, DeliveryMode::kPurePull, ttr, 1.0));
    sweep.push_back(
        bench::MakePoint("IPP bw50%", ttr, DeliveryMode::kIpp, ttr, 0.5));
    sweep.push_back(bench::MakePoint("IPP bw50% t25%", ttr,
                                     DeliveryMode::kIpp, ttr, 0.5, 0.25));
  }
  const auto sweep_outcomes =
      bench::RunSweep(sweep, bench::BenchSteadyProtocol());
  std::printf("Drop rate (%%) vs load:\n");
  bench::PrintDropRateTable("ThinkTimeRatio", sweep_outcomes);
  std::printf(
      "Paper shape: IPP saturates before Pure-Pull at equal load (less pull\n"
      "bandwidth for the same request stream); a threshold sharply cuts the\n"
      "drop rate by suppressing requests for soon-to-arrive pages.\n");
  return 0;
}
