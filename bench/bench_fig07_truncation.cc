// Figure 7: restricting the push schedule's contents at light load
// (ThinkTimeRatio = 25). Pages are chopped from the slowest disk first,
// then the middle disk; chopped pages are pull-only.
//   (a) ThresPerc = 0%   (b) ThresPerc = 35%
// Curves: IPP at PullBW {10,30,50}%, with the pure algorithms flat.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner(
      "Figure 7",
      "Truncating the push schedule, ThinkTimeRatio = 25.");

  const std::vector<std::uint32_t> chops = {0, 100, 200, 300, 400,
                                            500, 600, 700};
  const double kTtr = 25.0;

  for (const double thres : {0.0, 0.35}) {
    std::vector<core::SweepPoint> points;
    for (const std::uint32_t chop : chops) {
      // The pure algorithms do not depend on the chop (Pull has no push
      // schedule; Push is only run unchopped) — plot them flat.
      points.push_back(bench::MakePoint("Push", chop,
                                        DeliveryMode::kPurePush, kTtr));
      points.push_back(bench::MakePoint("Pull", chop,
                                        DeliveryMode::kPurePull, kTtr, 1.0));
      for (const double bw : {0.1, 0.3, 0.5}) {
        char label[32];
        std::snprintf(label, sizeof(label), "IPP bw%.0f%%", bw * 100);
        points.push_back(bench::MakePoint(label, chop, DeliveryMode::kIpp,
                                          kTtr, bw, thres, 0.95, 0.0, chop));
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Figure 7(%c): ThresPerc = %.0f%%\n",
                thres == 0.0 ? 'a' : 'b', thres * 100);
    bench::PrintResponseTable("Non-broadcast pages", outcomes);
    std::printf("\n");
  }
  std::printf(
      "Paper shape: dropping pages needs matching pull bandwidth. At\n"
      "PullBW=10%% response explodes as pages leave the schedule (no safety\n"
      "net + dropped requests). With a 35%% threshold and PullBW=50%%,\n"
      "truncation *improves* response (paper: 155 -> 63 units) until the\n"
      "pull channel can no longer carry the extra misses.\n");
  return 0;
}
