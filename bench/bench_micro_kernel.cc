// google-benchmark microbenchmarks for the simulation substrate: these
// bound how much wall-clock the figure benches need and catch performance
// regressions in the hot paths (event queue, sampling, slot loop).

#include <benchmark/benchmark.h>

#include "broadcast/broadcast_program.h"
#include "broadcast/page_ranking.h"
#include "broadcast/program_builder.h"
#include "core/system.h"
#include "sim/alias_sampler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/zipf.h"

namespace {

using namespace bdisk;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < depth; ++i) {
    queue.Schedule(rng.NextDouble() * 1e6, [] {});
  }
  double t = 1e6;
  for (auto _ : state) {
    sim::EventQueue::Fired fired;
    queue.Pop(&fired);
    queue.Schedule(t, [] {});
    t += 0.5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(16)->Arg(256)->Arg(4096);

// The slot-loop fast path: a periodic timer popped and re-armed against a
// backdrop of `depth` pending one-shots, without touching the heap.
void BM_EventQueuePeriodicTick(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < depth; ++i) {
    // Far in the future so the periodic always wins the comparison.
    queue.Schedule(1e9 + rng.NextDouble() * 1e6, [] {});
  }
  struct NopHandler : sim::EventHandler {
    void OnEvent() override {}
  } handler;
  queue.SchedulePeriodic(1.0, 1.0, &handler);
  for (auto _ : state) {
    sim::EventQueue::Fired fired;
    queue.Pop(&fired);
    fired.fn();
    queue.Rearm(fired.periodic);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePeriodicTick)->Arg(16)->Arg(4096);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNext);

void BM_ZipfAliasSampling(benchmark::State& state) {
  const auto pmf = sim::ZipfPmf(static_cast<std::size_t>(state.range(0)),
                                0.95);
  sim::AliasSampler sampler(pmf);
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(sampler.Sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfAliasSampling)->Arg(1000)->Arg(100000);

void BM_ProgramBuild(benchmark::State& state) {
  const auto probs = sim::ZipfPmf(1000, 0.95);
  const auto config = broadcast::DiskConfig::Paper();
  for (auto _ : state) {
    auto layout = broadcast::BuildPushLayout(probs, config, 100, 0);
    auto schedule =
        broadcast::BuildSchedule(layout.disk_pages, config.rel_freqs);
    benchmark::DoNotOptimize(schedule.data());
  }
}
BENCHMARK(BM_ProgramBuild);

void BM_DistanceToNext(benchmark::State& state) {
  const auto probs = sim::ZipfPmf(1000, 0.95);
  const auto config = broadcast::DiskConfig::Paper();
  auto layout = broadcast::BuildPushLayout(probs, config, 100, 0);
  const broadcast::BroadcastProgram program(
      broadcast::BuildSchedule(layout.disk_pages, config.rel_freqs), 1000);
  sim::Rng rng(3);
  for (auto _ : state) {
    const auto pos = static_cast<std::uint32_t>(
        rng.NextBounded(program.Length()));
    const auto page = static_cast<broadcast::PageId>(rng.NextBounded(1000));
    benchmark::DoNotOptimize(program.DistanceToNext(pos, page));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistanceToNext);

// End-to-end: simulated broadcast units per second of wall-clock for a
// full-scale IPP system under heavy backchannel load.
void BM_EndToEndSlots(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::SystemConfig config;
    config.think_time_ratio = static_cast<double>(state.range(0));
    core::System system(config);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots)->Arg(10)->Arg(250)->Unit(benchmark::kMillisecond);

}  // namespace
