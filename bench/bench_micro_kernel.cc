// google-benchmark microbenchmarks for the simulation substrate: these
// bound how much wall-clock the figure benches need and catch performance
// regressions in the hot paths (event queue, sampling, slot loop).

#include <benchmark/benchmark.h>

#include <vector>

#include "broadcast/broadcast_program.h"
#include "broadcast/page_ranking.h"
#include "broadcast/program_builder.h"
#include "core/system.h"
#include "harness.h"
#include "sim/alias_sampler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/zipf.h"

namespace {

using namespace bdisk;

// Steady-state hold-and-replace at a fixed depth. The schedule horizon
// mirrors the simulation's real event mix: events land within a bounded
// window ahead of the clock, which is exactly the distribution the
// calendar wheel is tuned for.
void ScheduleAndPop(benchmark::State& state, sim::QueueKind kind) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue(kind);
  sim::Rng rng(1);
  double t = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.Schedule(rng.NextDouble() * 1e3, [] {});
  }
  for (auto _ : state) {
    sim::EventQueue::Fired fired;
    queue.Pop(&fired);
    t = fired.when;
    queue.Schedule(t + 1.0 + rng.NextDouble() * 1e3, [] {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// The unsuffixed name is the default backend (the wheel, unless
// BDISK_KERNEL_QUEUE overrides it); the Heap arm is the explicit pairing
// partner for speedup ratios at every depth.
void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  ScheduleAndPop(state, sim::DefaultQueueKind());
}
BENCHMARK(BM_EventQueueScheduleAndPop)
    ->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueScheduleAndPopHeap(benchmark::State& state) {
  ScheduleAndPop(state, sim::QueueKind::kHeap);
}
BENCHMARK(BM_EventQueueScheduleAndPopHeap)
    ->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// Mixed churn: every iteration pops one event, schedules one replacement,
// and cancels-then-reschedules one random live event — the lazy-deletion
// worst case, where a constant stream of stale carcasses flows through
// the backend.
void ScheduleCancelChurn(benchmark::State& state, sim::QueueKind kind) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue(kind);
  sim::Rng rng(1);
  std::vector<sim::EventId> live(depth);
  double t = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    live[i] = queue.Schedule(rng.NextDouble() * 1e3, [] {});
  }
  for (auto _ : state) {
    sim::EventQueue::Fired fired;
    queue.Pop(&fired);
    t = fired.when;
    // Replace the popped event, then cancel-and-reschedule a random live
    // one; the IsPending branch keeps the live count exactly at `depth`.
    const sim::EventId fresh =
        queue.Schedule(t + 1.0 + rng.NextDouble() * 1e3, [] {});
    const std::size_t victim = rng.NextBounded(depth);
    if (queue.IsPending(live[victim])) {
      queue.Cancel(live[victim]);
      live[victim] = queue.Schedule(t + 1.0 + rng.NextDouble() * 1e3, [] {});
    } else {
      live[victim] = fresh;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EventQueueChurn(benchmark::State& state) {
  ScheduleCancelChurn(state, sim::DefaultQueueKind());
}
BENCHMARK(BM_EventQueueChurn)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueChurnHeap(benchmark::State& state) {
  ScheduleCancelChurn(state, sim::QueueKind::kHeap);
}
BENCHMARK(BM_EventQueueChurnHeap)->Arg(256)->Arg(4096)->Arg(65536);

// The slot-loop fast path: a periodic timer popped and re-armed against a
// backdrop of `depth` pending one-shots, without touching the heap.
void BM_EventQueuePeriodicTick(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < depth; ++i) {
    // Far in the future so the periodic always wins the comparison.
    queue.Schedule(1e9 + rng.NextDouble() * 1e6, [] {});
  }
  struct NopHandler : sim::EventHandler {
    void OnEvent() override {}
  } handler;
  queue.SchedulePeriodic(1.0, 1.0, &handler);
  for (auto _ : state) {
    sim::EventQueue::Fired fired;
    queue.Pop(&fired);
    fired.fn();
    queue.Rearm(fired.periodic);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePeriodicTick)->Arg(16)->Arg(4096);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNext);

void BM_ZipfAliasSampling(benchmark::State& state) {
  const auto pmf = sim::ZipfPmf(static_cast<std::size_t>(state.range(0)),
                                0.95);
  sim::AliasSampler sampler(pmf);
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(sampler.Sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfAliasSampling)->Arg(1000)->Arg(100000);

void BM_ProgramBuild(benchmark::State& state) {
  const auto probs = sim::ZipfPmf(1000, 0.95);
  const auto config = broadcast::DiskConfig::Paper();
  for (auto _ : state) {
    auto layout = broadcast::BuildPushLayout(probs, config, 100, 0);
    auto schedule =
        broadcast::BuildSchedule(layout.disk_pages, config.rel_freqs);
    benchmark::DoNotOptimize(schedule.data());
  }
}
BENCHMARK(BM_ProgramBuild);

void BM_DistanceToNext(benchmark::State& state) {
  const auto probs = sim::ZipfPmf(1000, 0.95);
  const auto config = broadcast::DiskConfig::Paper();
  auto layout = broadcast::BuildPushLayout(probs, config, 100, 0);
  const broadcast::BroadcastProgram program(
      broadcast::BuildSchedule(layout.disk_pages, config.rel_freqs), 1000);
  sim::Rng rng(3);
  for (auto _ : state) {
    const auto pos = static_cast<std::uint32_t>(
        rng.NextBounded(program.Length()));
    const auto page = static_cast<broadcast::PageId>(rng.NextBounded(1000));
    benchmark::DoNotOptimize(program.DistanceToNext(pos, page));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistanceToNext);

// End-to-end: simulated broadcast units per second of wall-clock for a
// full-scale IPP system under heavy backchannel load.
void EndToEndSlots(benchmark::State& state, core::KernelQueue queue,
                   bool batch) {
  for (auto _ : state) {
    state.PauseTiming();
    core::SystemConfig config;
    config.think_time_ratio = static_cast<double>(state.range(0));
    config.kernel_queue = queue;
    config.kernel_batch_slots = batch;
    core::System system(config);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}

// Default kernel (wheel + batched spans) vs. the PR 1 configuration (heap,
// per-event stepping): the pairing behind the end-to-end speedup claim.
void BM_EndToEndSlots(benchmark::State& state) {
  EndToEndSlots(state, core::KernelQueue::kAuto, true);
}
BENCHMARK(BM_EndToEndSlots)->Arg(10)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_EndToEndSlotsHeapStepped(benchmark::State& state) {
  EndToEndSlots(state, core::KernelQueue::kHeap, false);
}
BENCHMARK(BM_EndToEndSlotsHeapStepped)
    ->Arg(10)->Arg(250)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of benchmark_main: the provenance gate must run
// before any measurement, and the report context carries the bdisk build
// stamp so recorded JSON says what was measured (the library_build_type
// field google-benchmark emits describes the *benchmark library*, which
// is a debug build on some toolchains — not this code).
int main(int argc, char** argv) {
  bdisk::bench::RequireOptimizedBuild("bench_micro_kernel");
  benchmark::AddCustomContext("bdisk_build_type", bdisk::bench::BuildType());
  benchmark::AddCustomContext("bdisk_git_rev", bdisk::bench::GitRev());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
