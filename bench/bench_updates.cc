// Extension bench: volatile data ([Acha96b], lifting §1.4 assumption 3).
//
// The paper assumed read-only data, citing its companion result that "for
// moderate update rates, it is possible to approach the performance of the
// read-only case". This bench re-checks that claim in the push/pull
// setting: response time vs server update rate for each algorithm, at a
// moderate load.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Volatile data (extension)",
                     "Response time vs update rate (updates per broadcast "
                     "unit), ThinkTimeRatio = 50.");

  const std::vector<double> rates = {0.0, 0.005, 0.01, 0.02, 0.05, 0.1};
  const double kTtr = 50.0;

  std::vector<core::SweepPoint> points;
  for (const double rate : rates) {
    core::SweepPoint push =
        bench::MakePoint("Push", rate * 1000, DeliveryMode::kPurePush, kTtr);
    push.config.update_rate = rate;
    points.push_back(push);

    core::SweepPoint pull = bench::MakePoint(
        "Pull", rate * 1000, DeliveryMode::kPurePull, kTtr, 1.0);
    pull.config.update_rate = rate;
    points.push_back(pull);

    core::SweepPoint ipp = bench::MakePoint(
        "IPP bw50% t25%", rate * 1000, DeliveryMode::kIpp, kTtr, 0.5, 0.25);
    ipp.config.update_rate = rate;
    points.push_back(ipp);
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
  bench::PrintResponseTable("updates per 1000 units", outcomes);
  std::printf(
      "Expected: graceful degradation — low update rates stay near the\n"
      "read-only column; updates cost more under load because every\n"
      "invalidated hot page turns into new backchannel traffic.\n");
  return 0;
}
