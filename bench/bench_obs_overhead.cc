// Measures the cost of the observability layer on the end-to-end slot
// loop: the same System run with and without a MetricsRegistry and
// TraceSink attached. The budget (DESIGN.md, Observability) is < 3%
// overhead for the metrics hooks; compare BM_EndToEndSlots_Detached
// against BM_EndToEndSlots_Metrics. Results are recorded in
// BENCH_obs.json alongside BENCH_kernel.json.

#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "core/system.h"
#include "obs/flight_recorder.h"
#include "obs/frame_sink.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/telemetry_bus.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"

namespace {

using namespace bdisk;

core::SystemConfig BenchConfig(double think_time_ratio) {
  core::SystemConfig config;
  config.think_time_ratio = think_time_ratio;
  return config;
}

core::SystemConfig BenchConfigWithQueue(double think_time_ratio,
                                        core::KernelQueue queue) {
  core::SystemConfig config = BenchConfig(think_time_ratio);
  config.kernel_queue = queue;
  return config;
}

// Baseline: observability fully detached. All hook pointers stay null, so
// the hot path pays one branch per hook site and nothing else. The
// unsuffixed arm runs the default kernel (calendar wheel) and is the
// baseline for every attach arm; DetachedHeap pins the heap backend so
// ProfilerHeap has a like-for-like partner.
void BM_EndToEndSlots_Detached(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_Detached)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndSlots_DetachedHeap(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfigWithQueue(
        static_cast<double>(state.range(0)), core::KernelQueue::kHeap));
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_DetachedHeap)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// Metrics attached: every counter/gauge/time-series hook live, response
// histogram fed, slot-mix window sampled. This is the configuration the
// < 3% budget applies to.
void BM_EndToEndSlots_Metrics(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    obs::MetricsRegistry registry;
    system.AttachMetrics(&registry);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    state.PauseTiming();
    system.SnapshotMetrics(&registry);
    benchmark::DoNotOptimize(registry.counters().size());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_Metrics)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// Metrics and trace both attached: every span record goes into the ring
// buffer too. Tracing is an opt-in debugging aid, so it sits outside the
// 3% budget, but we track its cost here to keep it honest.
void BM_EndToEndSlots_MetricsAndTrace(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    obs::MetricsRegistry registry;
    obs::TraceSink sink(1 << 16);
    system.AttachMetrics(&registry);
    system.AttachTrace(&sink);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    benchmark::DoNotOptimize(sink.TotalEvents());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_MetricsAndTrace)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// The attachable analysis tier: metrics, windowed telemetry, and an
// armed-but-never-firing flight recorder — what `bdisk_sim --metrics-json
// --windows --flight-recorder` runs when tracing is off. The acceptance
// bound for this stack is < 5% over Detached.
void BM_EndToEndSlots_Windows(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    obs::MetricsRegistry registry;
    obs::WindowedCollector collector(100.0);
    obs::FlightTriggers triggers;
    triggers.queue_depth = 1e18;  // Armed, evaluated, never fires.
    obs::FlightRecorder recorder(triggers, "bench-flight-");
    system.AttachMetrics(&registry);
    system.AttachWindowedCollector(&collector);
    system.AttachFlightRecorder(&recorder);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    state.PauseTiming();
    collector.Finish();
    benchmark::DoNotOptimize(collector.WindowsCompleted());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_Windows)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// Wall-clock phase profiler attached, on each event-queue backend: every
// instrumentation frame pays its counter bump, sampled frames pay the
// timestamps. The acceptance bound (OBSERVABILITY.md §7) is < 5% over
// Detached at EndToEndSlots/250.
template <core::KernelQueue kQueue>
void BM_EndToEndSlots_Profiler(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfigWithQueue(
        static_cast<double>(state.range(0)), kQueue));
    obs::PhaseProfiler profiler;
    system.AttachProfiler(&profiler);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    state.PauseTiming();
    benchmark::DoNotOptimize(profiler.Calls(obs::Phase::kRun));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK_TEMPLATE(BM_EndToEndSlots_Profiler, core::KernelQueue::kHeap)
    ->Name("BM_EndToEndSlots_ProfilerHeap")
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_EndToEndSlots_Profiler, core::KernelQueue::kWheel)
    ->Name("BM_EndToEndSlots_ProfilerWheel")
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// Streaming telemetry bus on top of the full analysis tier (the Windows
// stack above, unchanged, plus the bus): live bdisk-frame-v1 frames
// through the real file write path (/dev/null, so serialization and
// write() cost is measured without disk noise). This is what `bdisk_sim
// --windows --frames` runs; the acceptance bound (OBSERVABILITY.md §8) is
// < 5% added over the Windows stack — compare against
// BM_EndToEndSlots_Windows, which this arm extends by exactly the bus.
void BM_EndToEndSlots_FrameBus(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    obs::MetricsRegistry registry;
    obs::WindowedCollector collector(100.0);
    obs::FlightTriggers triggers;
    triggers.queue_depth = 1e18;  // Armed, evaluated, never fires.
    obs::FlightRecorder recorder(triggers, "bench-flight-");
    std::string error;
    obs::TelemetryBus bus(obs::MakeFrameSink("/dev/null", &error));
    system.AttachMetrics(&registry);
    system.AttachWindowedCollector(&collector);
    system.AttachFlightRecorder(&recorder);
    system.AttachTelemetryBus(&bus);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    state.PauseTiming();
    collector.Finish();
    benchmark::DoNotOptimize(bus.FramesEmitted());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_FrameBus)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

// Everything at once, trace ring included. Like tracing itself this sits
// outside the 5% budget (the ring write per span event dominates), but we
// track it so the cost of the debugging configuration stays visible.
void BM_EndToEndSlots_FullTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::System system(BenchConfig(static_cast<double>(state.range(0))));
    obs::MetricsRegistry registry;
    obs::TraceSink sink(1 << 16);
    obs::WindowedCollector collector(100.0);
    obs::FlightTriggers triggers;
    triggers.queue_depth = 1e18;  // Armed, evaluated, never fires.
    obs::FlightRecorder recorder(triggers, "bench-flight-");
    system.AttachMetrics(&registry);
    system.AttachTrace(&sink);
    system.AttachWindowedCollector(&collector);
    system.AttachFlightRecorder(&recorder);
    system.mc().Start();
    if (system.vc() != nullptr) system.vc()->Start();
    state.ResumeTiming();
    system.simulator().RunUntil(20000.0);
    benchmark::DoNotOptimize(system.server().TotalSlots());
    state.PauseTiming();
    collector.Finish();
    benchmark::DoNotOptimize(collector.WindowsCompleted());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
  state.SetLabel("items = broadcast units");
}
BENCHMARK(BM_EndToEndSlots_FullTelemetry)
    ->Arg(10)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

}  // namespace
