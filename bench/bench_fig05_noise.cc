// Figure 5: sensitivity to Noise — divergence between the measured
// client's access pattern and the aggregate pattern driving the broadcast.
//   (a) Pure-Pull vs Pure-Push at Noise {0,15,35}%.
//   (b) IPP (PullBW=50%) vs Pure-Push at Noise {0,15,35}%.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Figure 5",
                     "Noise sensitivity (IPP PullBW = 50%, "
                     "SteadyStatePerc = 95%).");

  const std::vector<double> noises = {0.0, 0.15, 0.35};

  for (const bool panel_b : {false, true}) {
    std::vector<core::SweepPoint> points;
    for (const double ttr : bench::PaperTtrSweep()) {
      for (const double noise : noises) {
        char label[40];
        std::snprintf(label, sizeof(label), "Push n%.0f%%", noise * 100);
        points.push_back(bench::MakePoint(label, ttr,
                                          DeliveryMode::kPurePush, ttr, 0.5,
                                          0.0, 0.95, noise));
        if (!panel_b) {
          std::snprintf(label, sizeof(label), "Pull n%.0f%%", noise * 100);
          points.push_back(bench::MakePoint(label, ttr,
                                            DeliveryMode::kPurePull, ttr,
                                            1.0, 0.0, 0.95, noise));
        } else {
          std::snprintf(label, sizeof(label), "IPP n%.0f%%", noise * 100);
          points.push_back(bench::MakePoint(label, ttr, DeliveryMode::kIpp,
                                            ttr, 0.5, 0.0, 0.95, noise));
        }
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Figure 5(%c): %s vs Pure-Push\n", panel_b ? 'b' : 'a',
                panel_b ? "IPP" : "Pure-Pull");
    bench::PrintResponseTable("ThinkTimeRatio", outcomes);
    std::printf("\n");
  }
  std::printf(
      "Paper shape: at light load Pull is insensitive to Noise (the client\n"
      "just pulls what it needs); at heavy load Noise hurts badly — dropped\n"
      "requests leave the client dependent on other clients' requests. IPP\n"
      "saturates earlier but is less Noise-sensitive at the far right\n"
      "(push safety net). Push degrades steadily with Noise at all loads.\n");
  return 0;
}
