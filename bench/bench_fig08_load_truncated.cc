// Figure 8: server-load sensitivity of IPP with a truncated push schedule
// (PullBW = 30%, ThresPerc = 35%). Curves are the number of pages chopped
// from the schedule {full, -200, -300, -500, -700}, plus the pure
// algorithms.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner(
      "Figure 8",
      "Load sensitivity of restricted push: PullBW=30%, ThresPerc=35%.");

  const std::vector<std::uint32_t> chops = {0, 200, 300, 500, 700};

  std::vector<core::SweepPoint> points;
  for (const double ttr : bench::PaperTtrSweep()) {
    points.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
    points.push_back(
        bench::MakePoint("Pull", ttr, DeliveryMode::kPurePull, ttr, 1.0));
    for (const std::uint32_t chop : chops) {
      char label[32];
      if (chop == 0) {
        std::snprintf(label, sizeof(label), "IPP full");
      } else {
        std::snprintf(label, sizeof(label), "IPP -%u", chop);
      }
      points.push_back(bench::MakePoint(label, ttr, DeliveryMode::kIpp, ttr,
                                        0.3, 0.35, 0.95, 0.0, chop));
    }
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
  bench::PrintResponseTable("ThinkTimeRatio", outcomes);
  std::printf(
      "Paper shape: when underutilized (left), chopping more pages helps —\n"
      "pull bandwidth covers the misses. Past saturation (TTR > ~25) the\n"
      "ordering inverts: heavily chopped schedules lose their safety net\n"
      "and IPP -700 is worse than Pure-Pull across the whole range.\n");
  return 0;
}
