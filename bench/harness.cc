#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "core/provenance.h"
#include "core/table_printer.h"

namespace bdisk::bench {

bool QuickMode() {
  const char* quick = std::getenv("BDISK_BENCH_QUICK");
  return quick != nullptr && quick[0] != '\0';
}

// Provenance moved to core::provenance so the live-serve tools share the
// same stamp and gate; the bench-facing names stay as thin delegates.
const char* BuildType() { return core::BuildType(); }

const char* GitRev() { return core::GitRev(); }

bool OptimizedBuild() { return core::OptimizedBuild(); }

void RequireOptimizedBuild(const char* binary_name) {
  core::RequireOptimizedBuild(binary_name);
}

unsigned SweepThreads() {
  const char* threads = std::getenv("BDISK_THREADS");
  if (threads == nullptr || threads[0] == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(threads, &end, 10);
  if (end == threads || *end != '\0') return 0;
  return static_cast<unsigned>(parsed);
}

std::vector<core::SweepOutcome> RunSweep(
    const std::vector<core::SweepPoint>& points,
    const core::SteadyStateProtocol& steady,
    const core::WarmupProtocol& warmup) {
  return core::RunSweep(points, steady, warmup, SweepThreads());
}

core::SteadyStateProtocol BenchSteadyProtocol() {
  core::SteadyStateProtocol protocol;
  if (QuickMode()) {
    protocol.post_fill_accesses = 500;
    protocol.min_measured_accesses = 1000;
    protocol.max_measured_accesses = 3000;
    protocol.batch_size = 500;
    protocol.tolerance = 0.1;
  } else {
    protocol.post_fill_accesses = 4000;  // Paper §4.
    protocol.min_measured_accesses = 3000;
    protocol.max_measured_accesses = 12000;
    protocol.batch_size = 1000;
    protocol.tolerance = 0.03;
  }
  return protocol;
}

core::WarmupProtocol BenchWarmupProtocol() {
  core::WarmupProtocol protocol;  // Fractions 10%..95% as in Figure 4.
  return protocol;
}

void PrintBanner(const std::string& figure, const std::string& description) {
  RequireOptimizedBuild(figure.c_str());
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — \"Balancing Push and Pull for Data Broadcast\" "
              "(SIGMOD 1997)\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("build: %s @ %s\n", BuildType(), GitRev());
  std::printf("Table 3 defaults: DB=1000 pages, disks {100,400,500} @ "
              "{3,2,1}, cache=100,\nqueue=100, MC think=20, Zipf(0.95), "
              "Offset=CacheSize. Times in broadcast units.\n");
  if (QuickMode()) {
    std::printf("[BDISK_BENCH_QUICK set: short protocol, noisier numbers]\n");
  }
  std::printf("==============================================================="
              "=========\n\n");
}

namespace {

// Collects distinct values in first-appearance order.
template <typename T, typename Get>
std::vector<T> Distinct(const std::vector<core::SweepOutcome>& outcomes,
                        Get get) {
  std::vector<T> values;
  for (const auto& outcome : outcomes) {
    const T value = get(outcome);
    bool found = false;
    for (const T& v : values) {
      if (v == value) found = true;
    }
    if (!found) values.push_back(value);
  }
  return values;
}

using CellFn = double (*)(const core::RunResult&);

void PrintPivot(const std::string& x_label,
                const std::vector<core::SweepOutcome>& outcomes,
                CellFn cell, int precision) {
  const auto curves = Distinct<std::string>(
      outcomes, [](const auto& o) { return o.point.curve; });
  const auto xs =
      Distinct<double>(outcomes, [](const auto& o) { return o.point.x; });

  std::vector<std::string> headers = {x_label};
  headers.insert(headers.end(), curves.begin(), curves.end());
  core::TablePrinter table(headers);
  for (const double x : xs) {
    std::vector<std::string> row = {core::TablePrinter::Fmt(x, 0)};
    for (const std::string& curve : curves) {
      std::string value = "-";
      for (const auto& outcome : outcomes) {
        if (outcome.point.x == x && outcome.point.curve == curve) {
          value = core::TablePrinter::Fmt(cell(outcome.result), precision);
        }
      }
      row.push_back(value);
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

void PrintResponseTable(const std::string& x_label,
                        const std::vector<core::SweepOutcome>& outcomes) {
  PrintPivot(
      x_label, outcomes,
      [](const core::RunResult& r) { return r.mean_response; }, 1);
}

void PrintDropRateTable(const std::string& x_label,
                        const std::vector<core::SweepOutcome>& outcomes) {
  PrintPivot(
      x_label, outcomes,
      [](const core::RunResult& r) { return r.drop_rate * 100.0; }, 1);
}

void PrintWarmupTable(const std::vector<core::SweepOutcome>& outcomes) {
  const auto curves = Distinct<std::string>(
      outcomes, [](const auto& o) { return o.point.curve; });
  std::vector<std::string> headers = {"warm-up %"};
  headers.insert(headers.end(), curves.begin(), curves.end());
  core::TablePrinter table(headers);

  if (outcomes.empty()) return;
  for (const auto& point : outcomes.front().result.warmup) {
    std::vector<std::string> row = {
        core::TablePrinter::Pct(point.fraction, 0)};
    for (const std::string& curve : curves) {
      std::string value = "-";
      for (const auto& outcome : outcomes) {
        if (outcome.point.curve != curve) continue;
        for (const auto& wp : outcome.result.warmup) {
          if (wp.fraction == point.fraction && wp.time != sim::kTimeNever) {
            value = core::TablePrinter::Fmt(wp.time, 0);
          }
        }
      }
      row.push_back(value);
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

std::vector<double> PaperTtrSweep() { return {10, 25, 50, 100, 250}; }

core::SweepPoint MakePoint(const std::string& curve, double x,
                           core::DeliveryMode mode, double ttr,
                           double pull_bw, double thres_perc,
                           double steady_state_perc, double noise,
                           std::uint32_t chop) {
  core::SweepPoint point;
  point.curve = curve;
  point.x = x;
  point.config.mode = mode;
  point.config.think_time_ratio = ttr;
  point.config.pull_bw = pull_bw;
  point.config.thres_perc = thres_perc;
  point.config.steady_state_perc = steady_state_perc;
  point.config.noise = noise;
  point.config.chop_count = chop;
  return point;
}

}  // namespace bdisk::bench
