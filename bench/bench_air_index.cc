// Related-work companion (§5 / footnote 2): (1,m) air indexing
// [Imie94b]. The paper notes that the *predictability* of a periodic
// broadcast lets mobile clients doze; this bench quantifies the classic
// latency-vs-energy tradeoff for the paper's own 1600-slot Table 3
// program.

#include <cstdio>

#include "broadcast/air_index.h"
#include "core/table_printer.h"
#include "harness.h"

int main() {
  using namespace bdisk;

  bench::PrintBanner("(1,m) air indexing (related work)",
                     "Latency vs tuning time for the Table 3 broadcast "
                     "program.");

  const std::uint32_t data_slots = 1600;  // Table 3 major cycle.
  const std::uint32_t index_slots = 2;

  core::TablePrinter table(
      {"m", "cycle", "latency", "tuning (active slots)"});
  table.AddRow({"none", std::to_string(data_slots),
                core::TablePrinter::Fmt(
                    broadcast::UnindexedLatency(data_slots), 1),
                core::TablePrinter::Fmt(
                    broadcast::UnindexedTuningTime(data_slots), 1)});
  const std::uint32_t m_star =
      broadcast::OptimalIndexFrequency(data_slots, index_slots);
  for (const std::uint32_t m : {1U, 4U, 10U, m_star, 100U, 400U}) {
    const broadcast::AirIndexConfig config{data_slots, index_slots, m};
    std::string label = std::to_string(m);
    if (m == m_star) label += " (optimal)";
    table.AddRow(
        {label,
         core::TablePrinter::Fmt(broadcast::IndexedCycleLength(config), 0),
         core::TablePrinter::Fmt(broadcast::ExpectedLatency(config), 1),
         core::TablePrinter::Fmt(broadcast::ExpectedTuningTime(config), 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: tuning time collapses from ~%d active slots to ~%d with\n"
      "any index; latency is convex in m with the optimum at m* = "
      "sqrt(data/index) = %u;\npast m* the index overhead inflates the "
      "cycle for everyone.\n",
      static_cast<int>(broadcast::UnindexedTuningTime(data_slots)),
      static_cast<int>(broadcast::ExpectedTuningTime(
          {data_slots, index_slots, m_star})),
      m_star);
  return 0;
}
