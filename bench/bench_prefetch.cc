// Extension bench: opportunistic PT prefetching ([Acha96a], cited in §5:
// "opportunistic prefetching by the client can significantly improve
// performance over demand-driven caching").
//
// Two views: (1) steady-state response with and without prefetching across
// load; (2) warm-up time — prefetching clients grab pages as they stream
// past instead of faulting on them.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("PT prefetching (extension)",
                     "Demand-driven vs prefetching measured client.");

  // ---- Steady state across load. ----
  std::vector<core::SweepPoint> points;
  for (const double ttr : bench::PaperTtrSweep()) {
    points.push_back(
        bench::MakePoint("Push demand", ttr, DeliveryMode::kPurePush, ttr));
    core::SweepPoint push_pt =
        bench::MakePoint("Push PT", ttr, DeliveryMode::kPurePush, ttr);
    push_pt.config.mc_prefetch = true;
    points.push_back(push_pt);

    points.push_back(bench::MakePoint("IPP demand", ttr, DeliveryMode::kIpp,
                                      ttr, 0.5, 0.25));
    core::SweepPoint ipp_pt = bench::MakePoint(
        "IPP PT", ttr, DeliveryMode::kIpp, ttr, 0.5, 0.25);
    ipp_pt.config.mc_prefetch = true;
    points.push_back(ipp_pt);
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
  std::printf("Steady-state response:\n");
  bench::PrintResponseTable("ThinkTimeRatio", outcomes);

  // ---- Warm-up. ----
  std::vector<core::SweepPoint> warm_points;
  for (const bool prefetch : {false, true}) {
    core::SweepPoint point = bench::MakePoint(
        prefetch ? "Push PT" : "Push demand", 25, DeliveryMode::kPurePush,
        25);
    point.config.mc_prefetch = prefetch;
    point.warmup_run = true;
    warm_points.push_back(point);
  }
  const auto warm_outcomes =
      bench::RunSweep(warm_points, {}, bench::BenchWarmupProtocol());
  std::printf("Warm-up time (Pure-Push):\n");
  bench::PrintWarmupTable(warm_outcomes);
  std::printf(
      "Expected: prefetching slashes warm-up time (orders of magnitude) and\n"
      "modestly improves steady-state response by keeping the cache at the\n"
      "p*t optimum instead of the demand-faulted approximation.\n");
  return 0;
}
