// Virtual-client event fusion A/B: the same configuration run with
// vc_fusion on (default) and off, interleaved back to back per
// EXPERIMENTS.md wall-clock methodology, across the light/medium/heavy
// loads TTR {10, 50, 250}. Reports the heap-event reduction (exact,
// deterministic) and the wall-clock ratio (indicative on a contended box).
// The trajectory itself must not change: the bench aborts if fused and
// unfused disagree on any response statistic.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/table_printer.h"
#include "harness.h"

namespace {

struct Sample {
  double wall_ms = 0.0;
  bdisk::core::RunResult result;
};

Sample RunOnce(bdisk::core::SystemConfig config, bool fused,
               const bdisk::core::SteadyStateProtocol& protocol) {
  config.vc_fusion = fused;
  bdisk::core::System system(config);
  const auto start = std::chrono::steady_clock::now();
  Sample sample;
  sample.result = system.RunSteadyState(protocol);
  sample.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return sample;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main() {
  using namespace bdisk;

  bench::PrintBanner("VC fusion A/B",
                     "Heap events and wall-clock, vc_fusion on vs off.");

  const core::SteadyStateProtocol protocol = bench::BenchSteadyProtocol();
  const int reps = bench::QuickMode() ? 3 : 5;

  core::TablePrinter table({"TTR", "heap ev fused", "heap ev unfused",
                            "event ratio", "arrivals fused", "wall fused ms",
                            "wall unfused ms", "speedup"});
  for (const double ttr : {10.0, 50.0, 250.0}) {
    core::SystemConfig config;  // Table 3 defaults.
    config.mode = core::DeliveryMode::kIpp;
    config.pull_bw = 0.5;
    config.think_time_ratio = ttr;

    std::vector<double> fused_ms;
    std::vector<double> unfused_ms;
    core::RunResult fused_result;
    core::RunResult unfused_result;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleave A/B within each rep so both halves share the same
      // background load.
      Sample fused = RunOnce(config, true, protocol);
      Sample unfused = RunOnce(config, false, protocol);
      fused_ms.push_back(fused.wall_ms);
      unfused_ms.push_back(unfused.wall_ms);
      fused_result = fused.result;
      unfused_result = unfused.result;
    }

    if (fused_result.mean_response != unfused_result.mean_response ||
        fused_result.response_stats.Count() !=
            unfused_result.response_stats.Count() ||
        fused_result.sim_time_end != unfused_result.sim_time_end) {
      std::fprintf(stderr,
                   "FUSION BROKE THE TRAJECTORY at TTR=%.0f: fused mean %.17g"
                   " vs unfused %.17g\n",
                   ttr, fused_result.mean_response,
                   unfused_result.mean_response);
      return 1;
    }

    const double fused_events =
        static_cast<double>(fused_result.kernel.events_executed);
    const double unfused_events =
        static_cast<double>(unfused_result.kernel.events_executed);
    table.AddRow(
        {core::TablePrinter::Fmt(ttr, 0),
         core::TablePrinter::Fmt(fused_events, 0),
         core::TablePrinter::Fmt(unfused_events, 0),
         core::TablePrinter::Fmt(unfused_events / fused_events, 2),
         core::TablePrinter::Fmt(
             static_cast<double>(fused_result.kernel.lazy_arrivals_fused), 0),
         core::TablePrinter::Fmt(Median(fused_ms), 1),
         core::TablePrinter::Fmt(Median(unfused_ms), 1),
         core::TablePrinter::Fmt(Median(unfused_ms) / Median(fused_ms), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nEvent ratios are deterministic; wall-clock ratios drift with the\n"
      "box (EXPERIMENTS.md). The heavier the load (higher TTR), the larger\n"
      "the share of heap events that were VC arrivals, so the ratio grows\n"
      "to the right.\n");
  return 0;
}
