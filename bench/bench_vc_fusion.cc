// Virtual-client event fusion A/B/C: the same configuration run with the
// batched arrival spine (vc_fusion on + sim.arrival_spine on, the
// default), fused scalar (spine off), and unfused, interleaved back to
// back per EXPERIMENTS.md wall-clock methodology, across the light/
// medium/heavy loads TTR {10, 50, 250}. Reports the heap-event reduction
// (exact, deterministic) and the wall-clock ratios (indicative on a
// contended box). The trajectory itself must not change: the bench
// aborts if any pair of arms disagrees on any response statistic.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/table_printer.h"
#include "harness.h"

namespace {

enum class Arm { kSpine, kScalar, kUnfused };

struct Sample {
  double wall_ms = 0.0;
  bdisk::core::RunResult result;
};

Sample RunOnce(bdisk::core::SystemConfig config, Arm arm,
               const bdisk::core::SteadyStateProtocol& protocol) {
  config.vc_fusion = arm != Arm::kUnfused;
  // Pin the spine explicitly so the bench is immune to the
  // BDISK_ARRIVAL_SPINE environment override.
  config.arrival_spine = arm == Arm::kSpine ? bdisk::core::ArrivalSpine::kOn
                                            : bdisk::core::ArrivalSpine::kOff;
  bdisk::core::System system(config);
  const auto start = std::chrono::steady_clock::now();
  Sample sample;
  sample.result = system.RunSteadyState(protocol);
  sample.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return sample;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

bool SameTrajectory(const bdisk::core::RunResult& a,
                    const bdisk::core::RunResult& b) {
  return a.mean_response == b.mean_response &&
         a.response_stats.Count() == b.response_stats.Count() &&
         a.sim_time_end == b.sim_time_end;
}

}  // namespace

int main() {
  using namespace bdisk;

  bench::PrintBanner("VC fusion A/B/C",
                     "Heap events and wall-clock: spine vs fused-scalar vs "
                     "unfused.");

  const core::SteadyStateProtocol protocol = bench::BenchSteadyProtocol();
  const int reps = bench::QuickMode() ? 3 : 5;

  core::TablePrinter table({"TTR", "heap ev fused", "heap ev unfused",
                            "event ratio", "arrivals fused", "wall spine ms",
                            "wall scalar ms", "wall unfused ms",
                            "spine speedup", "total speedup"});
  for (const double ttr : {10.0, 50.0, 250.0}) {
    core::SystemConfig config;  // Table 3 defaults.
    config.mode = core::DeliveryMode::kIpp;
    config.pull_bw = 0.5;
    config.think_time_ratio = ttr;

    std::vector<double> spine_ms;
    std::vector<double> scalar_ms;
    std::vector<double> unfused_ms;
    core::RunResult spine_result;
    core::RunResult scalar_result;
    core::RunResult unfused_result;
    for (int rep = 0; rep < reps; ++rep) {
      // Interleave the arms within each rep so all of them share the same
      // background load.
      Sample spine = RunOnce(config, Arm::kSpine, protocol);
      Sample scalar = RunOnce(config, Arm::kScalar, protocol);
      Sample unfused = RunOnce(config, Arm::kUnfused, protocol);
      spine_ms.push_back(spine.wall_ms);
      scalar_ms.push_back(scalar.wall_ms);
      unfused_ms.push_back(unfused.wall_ms);
      spine_result = spine.result;
      scalar_result = scalar.result;
      unfused_result = unfused.result;
    }

    if (!SameTrajectory(spine_result, scalar_result) ||
        !SameTrajectory(spine_result, unfused_result)) {
      std::fprintf(stderr,
                   "FUSION BROKE THE TRAJECTORY at TTR=%.0f: spine mean %.17g"
                   " vs scalar %.17g vs unfused %.17g\n",
                   ttr, spine_result.mean_response,
                   scalar_result.mean_response, unfused_result.mean_response);
      return 1;
    }

    const double fused_events =
        static_cast<double>(spine_result.kernel.events_executed);
    const double unfused_events =
        static_cast<double>(unfused_result.kernel.events_executed);
    table.AddRow(
        {core::TablePrinter::Fmt(ttr, 0),
         core::TablePrinter::Fmt(fused_events, 0),
         core::TablePrinter::Fmt(unfused_events, 0),
         core::TablePrinter::Fmt(unfused_events / fused_events, 2),
         core::TablePrinter::Fmt(
             static_cast<double>(spine_result.kernel.lazy_arrivals_fused), 0),
         core::TablePrinter::Fmt(Median(spine_ms), 1),
         core::TablePrinter::Fmt(Median(scalar_ms), 1),
         core::TablePrinter::Fmt(Median(unfused_ms), 1),
         core::TablePrinter::Fmt(Median(scalar_ms) / Median(spine_ms), 2),
         core::TablePrinter::Fmt(Median(unfused_ms) / Median(spine_ms), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nEvent ratios are deterministic; wall-clock ratios drift with the\n"
      "box (EXPERIMENTS.md). The heavier the load (higher TTR), the larger\n"
      "the share of time spent in VC arrivals, so both the fusion event\n"
      "ratio and the spine speedup grow to the right. `spine speedup` is\n"
      "fused-scalar/spine (the batched-drain win alone); `total speedup`\n"
      "is unfused/spine.\n");
  return 0;
}
