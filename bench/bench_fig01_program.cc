// Figure 1: the example 7-page, 3-disk broadcast program, plus the program
// generated for the paper's full Table 3 configuration.

#include <cstdio>

#include "broadcast/broadcast_program.h"
#include "broadcast/page_ranking.h"
#include "broadcast/program_builder.h"
#include "harness.h"
#include "sim/zipf.h"

int main() {
  using namespace bdisk;
  bench::PrintBanner(
      "Figure 1",
      "Example broadcast program: 7 pages a..g on 3 disks spinning 4:2:1.");

  // Pages a..g are ids 0..6; probabilities just rank them in order.
  std::vector<double> probs = {0.30, 0.20, 0.15, 0.12, 0.10, 0.08, 0.05};
  const auto layout = broadcast::BuildPushLayout(
      probs, broadcast::DiskConfig::Figure1(), /*offset=*/0, /*chop=*/0);
  const auto schedule = broadcast::BuildSchedule(
      layout.disk_pages, broadcast::DiskConfig::Figure1().rel_freqs);
  const broadcast::BroadcastProgram program(schedule, 7);

  const char* names = "abcdefg";
  std::printf("Major cycle (%u slots): ", program.Length());
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    std::printf("%c ", names[program.PageAt(pos)]);
  }
  std::printf("\n\nPaper: a b d a c e a b f a c g  (12-slot major cycle;\n"
              "a on the fast disk 4x, b/c 2x, d..g once).\n\n");

  std::printf("Per-page frequency and expected wait (slots):\n");
  for (broadcast::PageId p = 0; p < 7; ++p) {
    std::printf("  %c: freq %u, expected wait %.2f\n", names[p],
                program.Frequency(p), program.ExpectedWait(p));
  }

  // Full-scale program for Table 3.
  const auto full_probs = sim::ZipfPmf(1000, 0.95);
  const auto full_layout = broadcast::BuildPushLayout(
      full_probs, broadcast::DiskConfig::Paper(), /*offset=*/100, 0);
  const auto full_schedule = broadcast::BuildSchedule(
      full_layout.disk_pages, broadcast::DiskConfig::Paper().rel_freqs);
  std::printf("\nTable 3 configuration: major cycle %zu slots "
              "(disks 100@3 + 400@2 + 500@1; hottest 100 pages Offset onto "
              "the slowest disk).\n", full_schedule.size());
  return 0;
}
