// Extension bench (paper §6 future work): dynamic adaptation.
//
// "We also see the utility in developing more dynamic algorithms that can
//  adjust to changes in the system load. For example, as the contention on
//  the server increases, a dynamic algorithm might automatically reduce
//  the pull bandwidth at the server and also use a larger threshold at the
//  client."
//
// We compare static IPP corner points against IPP with both controllers
// enabled, across the full load sweep. The adaptive system should track
// the better static corner in each regime without knowing the load.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Adaptive IPP (extension)",
                     "Static corner points vs dynamic PullBW + threshold "
                     "controllers.");

  std::vector<core::SweepPoint> points;
  for (const double ttr : bench::PaperTtrSweep()) {
    points.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
    points.push_back(
        bench::MakePoint("Pull", ttr, DeliveryMode::kPurePull, ttr, 1.0));
    // Static corners: aggressive (light-load-optimal) and conservative
    // (heavy-load-optimal).
    points.push_back(bench::MakePoint("IPP bw50% t0%", ttr,
                                      DeliveryMode::kIpp, ttr, 0.5, 0.0));
    points.push_back(bench::MakePoint("IPP bw30% t35%", ttr,
                                      DeliveryMode::kIpp, ttr, 0.3, 0.35));
    // Adaptive: starts at bw50%/t0% and tunes itself.
    core::SweepPoint adaptive = bench::MakePoint(
        "IPP adaptive", ttr, DeliveryMode::kIpp, ttr, 0.5, 0.0);
    adaptive.config.adaptive_pull_bw = true;
    adaptive.config.adaptive_threshold = true;
    points.push_back(adaptive);
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
  bench::PrintResponseTable("ThinkTimeRatio", outcomes);
  std::printf(
      "Expected: the adaptive column matches the aggressive corner at light\n"
      "load and beats both corners' *bad* regimes (no 70-80-unit penalty on\n"
      "the left, no 200+ saturation on the right). Mid-range it settles\n"
      "conservative — the price of steering by purely local signals.\n");
  return 0;
}
