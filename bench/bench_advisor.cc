// Extension bench (paper §6 future work): analytical parameter setting.
//
// "Beyond what was presented, we would like to develop tools to make the
//  parameter setting decisions for real dissemination-based information
//  systems easier. These tools could be analytic ..."
//
// Part 1 validates the closed-form predictor against the simulator across
// the load sweep for the three algorithms. Part 2 runs the advisor: it
// recommends (PullBW, ThresPerc) per load and for the whole load range,
// and we simulate its picks.

#include <cstdio>

#include "analysis/advisor.h"
#include "analysis/response_model.h"
#include "core/table_printer.h"
#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Analytic predictor & advisor (extension)",
                     "Closed-form response model vs simulation; automated "
                     "knob selection.");

  // ---- Part 1: predictor vs simulator. ----
  struct Algo {
    const char* name;
    DeliveryMode mode;
    double bw;
    double thres;
  };
  const std::vector<Algo> algos = {
      {"Push", DeliveryMode::kPurePush, 0.0, 0.0},
      {"Pull", DeliveryMode::kPurePull, 1.0, 0.0},
      {"IPP bw50% t25%", DeliveryMode::kIpp, 0.5, 0.25},
  };

  std::vector<core::SweepPoint> points;
  for (const Algo& algo : algos) {
    for (const double ttr : bench::PaperTtrSweep()) {
      points.push_back(bench::MakePoint(algo.name, ttr, algo.mode, ttr,
                                        algo.bw, algo.thres));
    }
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());

  core::TablePrinter table(
      {"algorithm", "TTR", "predicted", "simulated", "ratio"});
  for (const auto& outcome : outcomes) {
    const double predicted =
        analysis::PredictResponse(outcome.point.config).mean_response;
    const double simulated = outcome.result.mean_response;
    table.AddRow({outcome.point.curve,
                  core::TablePrinter::Fmt(outcome.point.x, 0),
                  core::TablePrinter::Fmt(predicted, 1),
                  core::TablePrinter::Fmt(simulated, 1),
                  core::TablePrinter::Fmt(
                      simulated > 0 ? predicted / simulated : 0.0, 2)});
  }
  std::printf("Predictor validation:\n%s\n", table.ToString().c_str());

  // ---- Part 2: advisor recommendations. ----
  core::TablePrinter rec_table({"load (TTR)", "rec PullBW", "rec ThresPerc",
                                "predicted", "simulated"});
  std::vector<core::SweepPoint> rec_points;
  std::vector<analysis::Recommendation> recs;
  for (const double ttr : bench::PaperTtrSweep()) {
    core::SystemConfig base;
    base.think_time_ratio = ttr;
    const analysis::Recommendation rec = analysis::Recommend(base);
    recs.push_back(rec);
    core::SweepPoint point = bench::MakePoint(
        "advised", ttr, DeliveryMode::kIpp, ttr, rec.pull_bw, rec.thres_perc);
    rec_points.push_back(point);
  }
  const auto rec_outcomes =
      bench::RunSweep(rec_points, bench::BenchSteadyProtocol());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    rec_table.AddRow(
        {core::TablePrinter::Fmt(rec_points[i].x, 0),
         core::TablePrinter::Pct(recs[i].pull_bw, 0),
         core::TablePrinter::Pct(recs[i].thres_perc, 0),
         core::TablePrinter::Fmt(recs[i].predicted_response, 1),
         core::TablePrinter::Fmt(rec_outcomes[i].result.mean_response, 1)});
  }
  std::printf("Per-load recommendations:\n%s\n", rec_table.ToString().c_str());

  core::SystemConfig base;
  const analysis::Recommendation robust =
      analysis::RecommendRobust(base, bench::PaperTtrSweep());
  std::printf("Robust pick across the whole sweep: PullBW=%.0f%%, "
              "ThresPerc=%.0f%% (predicted worst case %.1f)\n",
              robust.pull_bw * 100, robust.thres_perc * 100,
              robust.predicted_response);
  std::printf(
      "\nExpected: predictions within a small factor of simulation with the\n"
      "same orderings/crossovers; recommendations move from aggressive\n"
      "pull (left) to conservative threshold-heavy settings (right).\n");
  return 0;
}
