#ifndef BDISK_BENCH_HARNESS_H_
#define BDISK_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"

namespace bdisk::bench {

/// Measurement protocol used by the figure benches. Honors the environment
/// variable BDISK_BENCH_QUICK (any non-empty value): a shorter, noisier
/// protocol for smoke-testing the harness.
core::SteadyStateProtocol BenchSteadyProtocol();
core::WarmupProtocol BenchWarmupProtocol();

/// True when BDISK_BENCH_QUICK is set.
bool QuickMode();

/// Bench provenance: every recorded number must say what was measured.
/// BuildType() is the CMake configuration the bench binaries were built
/// under ("Release", "Debug", ...); GitRev() the short revision captured
/// at configure time ("unknown" outside a checkout).
const char* BuildType();
const char* GitRev();

/// True when this binary was compiled optimized (a Release-family CMake
/// configuration with NDEBUG, so BDISK_CHECK bounds checks are the only
/// assertions left).
bool OptimizedBuild();

/// Provenance gate: refuses to run (exits with a loud message) when the
/// bench was built non-optimized, so debug numbers can't silently end up
/// in BENCH_*.json records. Setting BDISK_BENCH_ALLOW_DEBUG=1 downgrades
/// the refusal to a tagged warning for local smoke tests. Called by
/// PrintBanner and by the google-benchmark mains.
void RequireOptimizedBuild(const char* binary_name);

/// Worker threads for bench sweeps: the BDISK_THREADS environment variable
/// parsed as a non-negative integer (unset, empty, or unparsable = 0 =
/// hardware concurrency). Results are bit-identical either way; the knob
/// only trades wall-clock for core use.
unsigned SweepThreads();

/// core::RunSweep with the thread count taken from BDISK_THREADS. Every
/// figure bench funnels through this so the knob applies uniformly.
std::vector<core::SweepOutcome> RunSweep(
    const std::vector<core::SweepPoint>& points,
    const core::SteadyStateProtocol& steady = {},
    const core::WarmupProtocol& warmup = {});

/// Prints the standard experiment banner: figure id, paper reference, and
/// the Table 3 parameters that apply to every run.
void PrintBanner(const std::string& figure, const std::string& description);

/// Pivots sweep outcomes into a curve-per-column table of mean response
/// times and prints it. `x_label` heads the first column; rows are the
/// distinct x values in first-appearance order, columns the distinct curve
/// labels in first-appearance order.
void PrintResponseTable(const std::string& x_label,
                        const std::vector<core::SweepOutcome>& outcomes);

/// Same pivot, but prints the server drop rate instead of response time.
void PrintDropRateTable(const std::string& x_label,
                        const std::vector<core::SweepOutcome>& outcomes);

/// Pivots warm-up outcomes: rows are warm-up fractions, columns curves,
/// cells the first time each fraction was reached.
void PrintWarmupTable(const std::vector<core::SweepOutcome>& outcomes);

/// Convenience: the paper's ThinkTimeRatio sweep {10,25,50,100,250}.
std::vector<double> PaperTtrSweep();

/// Builds a SweepPoint with Table 3 defaults plus the given overrides.
core::SweepPoint MakePoint(const std::string& curve, double x,
                           core::DeliveryMode mode, double ttr,
                           double pull_bw = 0.5, double thres_perc = 0.0,
                           double steady_state_perc = 0.95,
                           double noise = 0.0, std::uint32_t chop = 0);

}  // namespace bdisk::bench

#endif  // BDISK_BENCH_HARNESS_H_
