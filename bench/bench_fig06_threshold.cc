// Figure 6: influence of the client-side threshold on IPP response time.
//   (a) PullBW = 50%   (b) PullBW = 30%
// ThresPerc in {0,10,25,35}%, with Pure-Push and Pure-Pull for reference.
// Uses the paper's extended TTR sweep {10,25,35,50,75,100,250}.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Figure 6",
                     "Threshold (ThresPerc) vs response time for IPP.");

  const std::vector<double> ttrs = {10, 25, 35, 50, 75, 100, 250};
  const std::vector<double> thresholds = {0.0, 0.10, 0.25, 0.35};

  for (const double bw : {0.5, 0.3}) {
    std::vector<core::SweepPoint> points;
    for (const double ttr : ttrs) {
      points.push_back(
          bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
      points.push_back(
          bench::MakePoint("Pull", ttr, DeliveryMode::kPurePull, ttr, 1.0));
      for (const double thres : thresholds) {
        char label[32];
        std::snprintf(label, sizeof(label), "IPP t%.0f%%", thres * 100);
        points.push_back(
            bench::MakePoint(label, ttr, DeliveryMode::kIpp, ttr, bw, thres));
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Figure 6(%c): PullBW = %.0f%%\n", bw == 0.5 ? 'a' : 'b',
                bw * 100);
    bench::PrintResponseTable("ThinkTimeRatio", outcomes);
    std::printf("\n");
  }
  std::printf(
      "Paper shape: at light load thresholds only delay clients; as load\n"
      "grows they push the Pure-Push crossover to the right (~2x more\n"
      "clients at PullBW=50%% with t25%%, ~3x at PullBW=30%% with t35%%).\n"
      "Too large a threshold (35%% at PullBW=50%%) wastes waiting time\n"
      "before the server is actually saturated.\n");
  return 0;
}
