// Related-work baseline (§5): the Imielinski–Viswanathan publication /
// on-demand split [Imie94c, Vish94].
//
// Part 1 runs the IV optimizer analytically across loads: smallest uplink
// rate subject to a response bound. Part 2 *simulates* the IV pick by
// expressing it in our system (a flat one-disk broadcast of the
// publication group, everything else truncated to pull-only) and compares
// it against the paper's multi-disk IPP at the same loads — the
// comparison §5 makes qualitatively ("those results are not directly
// applicable here").

#include <cstdio>

#include "analysis/publication_split.h"
#include "core/table_printer.h"
#include "harness.h"
#include "sim/zipf.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("IV publication split (related-work baseline)",
                     "[Imie94c]-style split vs Broadcast-Disk IPP.");

  const auto probs = sim::ZipfPmf(1000, 0.95);
  const double response_bound = 400.0;

  // ---- Part 1: the analytic optimizer across loads. ----
  core::TablePrinter split_table({"TTR", "request rate", "publish n",
                                  "uplink rate", "predicted response"});
  std::vector<std::uint32_t> picks;
  for (const double ttr : bench::PaperTtrSweep()) {
    const double request_rate = ttr / 20.0;  // VC arrivals per unit.
    const analysis::SplitResult result =
        analysis::OptimizePublicationSplit(probs, request_rate,
                                           response_bound);
    if (!result.feasible) {
      split_table.AddRow({core::TablePrinter::Fmt(ttr, 0),
                          core::TablePrinter::Fmt(request_rate, 2),
                          "infeasible", "-", "-"});
      picks.push_back(1000);
      continue;
    }
    picks.push_back(result.best.publication_size);
    split_table.AddRow(
        {core::TablePrinter::Fmt(ttr, 0),
         core::TablePrinter::Fmt(request_rate, 2),
         std::to_string(result.best.publication_size),
         core::TablePrinter::Fmt(result.best.uplink_rate, 3),
         core::TablePrinter::Fmt(result.best.expected_response, 1)});
  }
  std::printf("Analytic optimum (bound = %.0f units):\n%s\n", response_bound,
              split_table.ToString().c_str());

  // ---- Part 2: simulate IV's pick vs multi-disk IPP. ----
  std::vector<core::SweepPoint> points;
  const auto ttrs = bench::PaperTtrSweep();
  for (std::size_t i = 0; i < ttrs.size(); ++i) {
    const double ttr = ttrs[i];
    // IV system: flat disk holding the publication group, rest pull-only,
    // no threshold (IV clients request every on-demand miss).
    const std::uint32_t n = std::min<std::uint32_t>(picks[i], 999);
    core::SweepPoint iv = bench::MakePoint("IV split", ttr,
                                           DeliveryMode::kIpp, ttr, 0.5);
    iv.config.disks = broadcast::DiskConfig{{1000}, {1}};
    iv.config.chop_count = 1000 - n;
    iv.config.offset = 0;  // IV has no cache-aware shifting.
    points.push_back(iv);

    points.push_back(bench::MakePoint("IPP bw50% t25%", ttr,
                                      DeliveryMode::kIpp, ttr, 0.5, 0.25));
    points.push_back(
        bench::MakePoint("Push", ttr, DeliveryMode::kPurePush, ttr));
  }
  const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
  std::printf("Simulated comparison:\n");
  bench::PrintResponseTable("ThinkTimeRatio", outcomes);
  std::printf(
      "Expected: the IV split is competitive at the load it was solved for\n"
      "but lacks the multi-disk frequency tiers, the Offset, and the\n"
      "threshold — the knobs this paper adds on top of a flat split.\n");
  return 0;
}
