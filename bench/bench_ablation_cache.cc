// Ablation benches for design choices the paper asserts from its prior
// work rather than re-measuring:
//
//  1. Cache replacement policy. [Acha95a] showed probability-only and
//     recency-based replacement lose to cost-based PIX against a broadcast;
//     §3.1 simply adopts PIX (and P for Pure-Pull). We measure all four.
//  2. Offset. §3.2: "the best broadcast program is obtained by shifting
//     [the] CacheSize hottest pages to the slowest disk". We run with and
//     without the shift.
//  3. Chunking mode. [Acha95a]'s algorithm pads non-divisible chunks with
//     empty slots; our default splits chunks evenly instead (DESIGN.md).

#include <cstdio>

#include "core/table_printer.h"
#include "harness.h"

int main() {
  using namespace bdisk;
  using core::DeliveryMode;

  bench::PrintBanner("Ablations",
                     "Cache policy, Offset, and chunking-mode ablations "
                     "(not a paper figure).");

  // ---------------------------------------------------- 1. Cache policy.
  {
    std::vector<core::SweepPoint> points;
    const std::vector<std::pair<const char*, cache::PolicyKind>> policies = {
        {"PIX", cache::PolicyKind::kPix},
        {"P", cache::PolicyKind::kP},
        {"LRU", cache::PolicyKind::kLru},
        {"LFU", cache::PolicyKind::kLfu},
    };
    for (const double ttr : {10.0, 50.0, 250.0}) {
      for (const auto& [name, kind] : policies) {
        core::SweepPoint point = bench::MakePoint(
            name, ttr, DeliveryMode::kIpp, ttr, 0.5, 0.25);
        point.config.mc_policy = kind;
        points.push_back(point);
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Ablation 1: MC cache replacement policy "
                "(IPP, PullBW=50%%, ThresPerc=25%%)\n");
    bench::PrintResponseTable("ThinkTimeRatio", outcomes);
    std::printf("Expected: PIX <= P < LRU/LFU — cost-based replacement keeps\n"
                "slow-disk pages cached and lets fast-disk pages stream.\n\n");
  }

  // --------------------------------------------------------- 2. Offset.
  {
    std::vector<core::SweepPoint> points;
    for (const double ttr : {10.0, 50.0, 250.0}) {
      for (const bool offset_on : {true, false}) {
        core::SweepPoint point = bench::MakePoint(
            offset_on ? "Offset" : "NoOffset", ttr, DeliveryMode::kPurePush,
            ttr);
        point.config.offset = offset_on ? 100U : 0U;
        points.push_back(point);
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Ablation 2: Offset on/off (Pure-Push)\n");
    bench::PrintResponseTable("ThinkTimeRatio", outcomes);
    std::printf("Expected: Offset wins in steady state — broadcasting the\n"
                "cache-resident pages often is wasted bandwidth.\n\n");
  }

  // ------------------------------------------------- 3. Chunking mode.
  {
    std::vector<core::SweepPoint> points;
    for (const double ttr : {10.0, 50.0, 250.0}) {
      for (const bool pad : {false, true}) {
        core::SweepPoint point = bench::MakePoint(
            pad ? "Pad" : "Balanced", ttr, DeliveryMode::kPurePush, ttr);
        point.config.chunking = pad ? broadcast::ChunkingMode::kPad
                                    : broadcast::ChunkingMode::kBalanced;
        points.push_back(point);
      }
    }
    const auto outcomes = bench::RunSweep(points, bench::BenchSteadyProtocol());
    std::printf("Ablation 3: chunk padding ([Acha95a] literal) vs balanced "
                "split (Pure-Push)\n");
    bench::PrintResponseTable("ThinkTimeRatio", outcomes);
    std::printf("Expected: balanced is slightly better — padding wastes\n"
                "slots (1608- vs 1600-slot major cycle here).\n");
  }
  return 0;
}
