file(REMOVE_RECURSE
  "CMakeFiles/bdisk_sim.dir/alias_sampler.cc.o"
  "CMakeFiles/bdisk_sim.dir/alias_sampler.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/batch_means.cc.o"
  "CMakeFiles/bdisk_sim.dir/batch_means.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/event_queue.cc.o"
  "CMakeFiles/bdisk_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/histogram.cc.o"
  "CMakeFiles/bdisk_sim.dir/histogram.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/process.cc.o"
  "CMakeFiles/bdisk_sim.dir/process.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/rng.cc.o"
  "CMakeFiles/bdisk_sim.dir/rng.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/simulator.cc.o"
  "CMakeFiles/bdisk_sim.dir/simulator.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/stats.cc.o"
  "CMakeFiles/bdisk_sim.dir/stats.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/time_series.cc.o"
  "CMakeFiles/bdisk_sim.dir/time_series.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/trace.cc.o"
  "CMakeFiles/bdisk_sim.dir/trace.cc.o.d"
  "CMakeFiles/bdisk_sim.dir/zipf.cc.o"
  "CMakeFiles/bdisk_sim.dir/zipf.cc.o.d"
  "libbdisk_sim.a"
  "libbdisk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
