# Empty compiler generated dependencies file for bdisk_sim.
# This may be replaced when dependencies are built.
