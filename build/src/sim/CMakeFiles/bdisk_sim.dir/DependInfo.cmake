
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/alias_sampler.cc" "src/sim/CMakeFiles/bdisk_sim.dir/alias_sampler.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/alias_sampler.cc.o.d"
  "/root/repo/src/sim/batch_means.cc" "src/sim/CMakeFiles/bdisk_sim.dir/batch_means.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/batch_means.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/bdisk_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/histogram.cc" "src/sim/CMakeFiles/bdisk_sim.dir/histogram.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/histogram.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/sim/CMakeFiles/bdisk_sim.dir/process.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/process.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/bdisk_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/bdisk_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/bdisk_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/time_series.cc" "src/sim/CMakeFiles/bdisk_sim.dir/time_series.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/time_series.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/bdisk_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/zipf.cc" "src/sim/CMakeFiles/bdisk_sim.dir/zipf.cc.o" "gcc" "src/sim/CMakeFiles/bdisk_sim.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
