file(REMOVE_RECURSE
  "libbdisk_sim.a"
)
