
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/advisor.cc" "src/analysis/CMakeFiles/bdisk_analysis.dir/advisor.cc.o" "gcc" "src/analysis/CMakeFiles/bdisk_analysis.dir/advisor.cc.o.d"
  "/root/repo/src/analysis/publication_split.cc" "src/analysis/CMakeFiles/bdisk_analysis.dir/publication_split.cc.o" "gcc" "src/analysis/CMakeFiles/bdisk_analysis.dir/publication_split.cc.o.d"
  "/root/repo/src/analysis/queue_model.cc" "src/analysis/CMakeFiles/bdisk_analysis.dir/queue_model.cc.o" "gcc" "src/analysis/CMakeFiles/bdisk_analysis.dir/queue_model.cc.o.d"
  "/root/repo/src/analysis/response_model.cc" "src/analysis/CMakeFiles/bdisk_analysis.dir/response_model.cc.o" "gcc" "src/analysis/CMakeFiles/bdisk_analysis.dir/response_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bdisk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bdisk_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/bdisk_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/bdisk_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bdisk_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bdisk_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
