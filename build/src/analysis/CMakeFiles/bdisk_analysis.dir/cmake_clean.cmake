file(REMOVE_RECURSE
  "CMakeFiles/bdisk_analysis.dir/advisor.cc.o"
  "CMakeFiles/bdisk_analysis.dir/advisor.cc.o.d"
  "CMakeFiles/bdisk_analysis.dir/publication_split.cc.o"
  "CMakeFiles/bdisk_analysis.dir/publication_split.cc.o.d"
  "CMakeFiles/bdisk_analysis.dir/queue_model.cc.o"
  "CMakeFiles/bdisk_analysis.dir/queue_model.cc.o.d"
  "CMakeFiles/bdisk_analysis.dir/response_model.cc.o"
  "CMakeFiles/bdisk_analysis.dir/response_model.cc.o.d"
  "libbdisk_analysis.a"
  "libbdisk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
