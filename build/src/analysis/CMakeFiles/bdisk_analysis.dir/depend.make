# Empty dependencies file for bdisk_analysis.
# This may be replaced when dependencies are built.
