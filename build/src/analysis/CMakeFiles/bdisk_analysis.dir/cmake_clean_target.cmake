file(REMOVE_RECURSE
  "libbdisk_analysis.a"
)
