# Empty dependencies file for bdisk_client.
# This may be replaced when dependencies are built.
