file(REMOVE_RECURSE
  "CMakeFiles/bdisk_client.dir/measured_client.cc.o"
  "CMakeFiles/bdisk_client.dir/measured_client.cc.o.d"
  "CMakeFiles/bdisk_client.dir/threshold_filter.cc.o"
  "CMakeFiles/bdisk_client.dir/threshold_filter.cc.o.d"
  "CMakeFiles/bdisk_client.dir/virtual_client.cc.o"
  "CMakeFiles/bdisk_client.dir/virtual_client.cc.o.d"
  "CMakeFiles/bdisk_client.dir/warmup_tracker.cc.o"
  "CMakeFiles/bdisk_client.dir/warmup_tracker.cc.o.d"
  "libbdisk_client.a"
  "libbdisk_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
