file(REMOVE_RECURSE
  "libbdisk_client.a"
)
