
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/measured_client.cc" "src/client/CMakeFiles/bdisk_client.dir/measured_client.cc.o" "gcc" "src/client/CMakeFiles/bdisk_client.dir/measured_client.cc.o.d"
  "/root/repo/src/client/threshold_filter.cc" "src/client/CMakeFiles/bdisk_client.dir/threshold_filter.cc.o" "gcc" "src/client/CMakeFiles/bdisk_client.dir/threshold_filter.cc.o.d"
  "/root/repo/src/client/virtual_client.cc" "src/client/CMakeFiles/bdisk_client.dir/virtual_client.cc.o" "gcc" "src/client/CMakeFiles/bdisk_client.dir/virtual_client.cc.o.d"
  "/root/repo/src/client/warmup_tracker.cc" "src/client/CMakeFiles/bdisk_client.dir/warmup_tracker.cc.o" "gcc" "src/client/CMakeFiles/bdisk_client.dir/warmup_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/bdisk_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bdisk_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bdisk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
