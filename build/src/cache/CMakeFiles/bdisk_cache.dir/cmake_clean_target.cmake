file(REMOVE_RECURSE
  "libbdisk_cache.a"
)
