file(REMOVE_RECURSE
  "CMakeFiles/bdisk_cache.dir/cache.cc.o"
  "CMakeFiles/bdisk_cache.dir/cache.cc.o.d"
  "CMakeFiles/bdisk_cache.dir/lfu_policy.cc.o"
  "CMakeFiles/bdisk_cache.dir/lfu_policy.cc.o.d"
  "CMakeFiles/bdisk_cache.dir/lru_policy.cc.o"
  "CMakeFiles/bdisk_cache.dir/lru_policy.cc.o.d"
  "CMakeFiles/bdisk_cache.dir/static_value_policy.cc.o"
  "CMakeFiles/bdisk_cache.dir/static_value_policy.cc.o.d"
  "CMakeFiles/bdisk_cache.dir/value_functions.cc.o"
  "CMakeFiles/bdisk_cache.dir/value_functions.cc.o.d"
  "libbdisk_cache.a"
  "libbdisk_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
