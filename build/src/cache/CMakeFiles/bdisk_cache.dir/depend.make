# Empty dependencies file for bdisk_cache.
# This may be replaced when dependencies are built.
