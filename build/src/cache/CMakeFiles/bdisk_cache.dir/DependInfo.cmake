
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/cache/CMakeFiles/bdisk_cache.dir/cache.cc.o" "gcc" "src/cache/CMakeFiles/bdisk_cache.dir/cache.cc.o.d"
  "/root/repo/src/cache/lfu_policy.cc" "src/cache/CMakeFiles/bdisk_cache.dir/lfu_policy.cc.o" "gcc" "src/cache/CMakeFiles/bdisk_cache.dir/lfu_policy.cc.o.d"
  "/root/repo/src/cache/lru_policy.cc" "src/cache/CMakeFiles/bdisk_cache.dir/lru_policy.cc.o" "gcc" "src/cache/CMakeFiles/bdisk_cache.dir/lru_policy.cc.o.d"
  "/root/repo/src/cache/static_value_policy.cc" "src/cache/CMakeFiles/bdisk_cache.dir/static_value_policy.cc.o" "gcc" "src/cache/CMakeFiles/bdisk_cache.dir/static_value_policy.cc.o.d"
  "/root/repo/src/cache/value_functions.cc" "src/cache/CMakeFiles/bdisk_cache.dir/value_functions.cc.o" "gcc" "src/cache/CMakeFiles/bdisk_cache.dir/value_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
