file(REMOVE_RECURSE
  "libbdisk_workload.a"
)
