
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/access_pattern.cc" "src/workload/CMakeFiles/bdisk_workload.dir/access_pattern.cc.o" "gcc" "src/workload/CMakeFiles/bdisk_workload.dir/access_pattern.cc.o.d"
  "/root/repo/src/workload/noise.cc" "src/workload/CMakeFiles/bdisk_workload.dir/noise.cc.o" "gcc" "src/workload/CMakeFiles/bdisk_workload.dir/noise.cc.o.d"
  "/root/repo/src/workload/think_time.cc" "src/workload/CMakeFiles/bdisk_workload.dir/think_time.cc.o" "gcc" "src/workload/CMakeFiles/bdisk_workload.dir/think_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
