# Empty dependencies file for bdisk_workload.
# This may be replaced when dependencies are built.
