file(REMOVE_RECURSE
  "CMakeFiles/bdisk_workload.dir/access_pattern.cc.o"
  "CMakeFiles/bdisk_workload.dir/access_pattern.cc.o.d"
  "CMakeFiles/bdisk_workload.dir/noise.cc.o"
  "CMakeFiles/bdisk_workload.dir/noise.cc.o.d"
  "CMakeFiles/bdisk_workload.dir/think_time.cc.o"
  "CMakeFiles/bdisk_workload.dir/think_time.cc.o.d"
  "libbdisk_workload.a"
  "libbdisk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
