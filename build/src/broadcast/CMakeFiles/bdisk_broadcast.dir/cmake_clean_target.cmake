file(REMOVE_RECURSE
  "libbdisk_broadcast.a"
)
