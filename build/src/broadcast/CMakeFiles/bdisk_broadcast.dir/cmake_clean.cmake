file(REMOVE_RECURSE
  "CMakeFiles/bdisk_broadcast.dir/air_index.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/air_index.cc.o.d"
  "CMakeFiles/bdisk_broadcast.dir/broadcast_program.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/broadcast_program.cc.o.d"
  "CMakeFiles/bdisk_broadcast.dir/disk_config.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/disk_config.cc.o.d"
  "CMakeFiles/bdisk_broadcast.dir/page_ranking.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/page_ranking.cc.o.d"
  "CMakeFiles/bdisk_broadcast.dir/program_builder.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/program_builder.cc.o.d"
  "CMakeFiles/bdisk_broadcast.dir/schedule_cursor.cc.o"
  "CMakeFiles/bdisk_broadcast.dir/schedule_cursor.cc.o.d"
  "libbdisk_broadcast.a"
  "libbdisk_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
