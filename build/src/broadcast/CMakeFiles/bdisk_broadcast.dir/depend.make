# Empty dependencies file for bdisk_broadcast.
# This may be replaced when dependencies are built.
