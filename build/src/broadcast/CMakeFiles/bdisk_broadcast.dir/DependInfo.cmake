
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broadcast/air_index.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/air_index.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/air_index.cc.o.d"
  "/root/repo/src/broadcast/broadcast_program.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/broadcast_program.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/broadcast_program.cc.o.d"
  "/root/repo/src/broadcast/disk_config.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/disk_config.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/disk_config.cc.o.d"
  "/root/repo/src/broadcast/page_ranking.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/page_ranking.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/page_ranking.cc.o.d"
  "/root/repo/src/broadcast/program_builder.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/program_builder.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/program_builder.cc.o.d"
  "/root/repo/src/broadcast/schedule_cursor.cc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/schedule_cursor.cc.o" "gcc" "src/broadcast/CMakeFiles/bdisk_broadcast.dir/schedule_cursor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
