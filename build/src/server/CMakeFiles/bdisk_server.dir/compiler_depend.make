# Empty compiler generated dependencies file for bdisk_server.
# This may be replaced when dependencies are built.
