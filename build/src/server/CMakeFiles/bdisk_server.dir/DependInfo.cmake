
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/broadcast_server.cc" "src/server/CMakeFiles/bdisk_server.dir/broadcast_server.cc.o" "gcc" "src/server/CMakeFiles/bdisk_server.dir/broadcast_server.cc.o.d"
  "/root/repo/src/server/pull_queue.cc" "src/server/CMakeFiles/bdisk_server.dir/pull_queue.cc.o" "gcc" "src/server/CMakeFiles/bdisk_server.dir/pull_queue.cc.o.d"
  "/root/repo/src/server/update_generator.cc" "src/server/CMakeFiles/bdisk_server.dir/update_generator.cc.o" "gcc" "src/server/CMakeFiles/bdisk_server.dir/update_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
