file(REMOVE_RECURSE
  "CMakeFiles/bdisk_server.dir/broadcast_server.cc.o"
  "CMakeFiles/bdisk_server.dir/broadcast_server.cc.o.d"
  "CMakeFiles/bdisk_server.dir/pull_queue.cc.o"
  "CMakeFiles/bdisk_server.dir/pull_queue.cc.o.d"
  "CMakeFiles/bdisk_server.dir/update_generator.cc.o"
  "CMakeFiles/bdisk_server.dir/update_generator.cc.o.d"
  "libbdisk_server.a"
  "libbdisk_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
