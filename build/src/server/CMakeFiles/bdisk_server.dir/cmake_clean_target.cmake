file(REMOVE_RECURSE
  "libbdisk_server.a"
)
