file(REMOVE_RECURSE
  "libbdisk_core.a"
)
