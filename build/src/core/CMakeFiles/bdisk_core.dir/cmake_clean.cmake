file(REMOVE_RECURSE
  "CMakeFiles/bdisk_core.dir/analytic.cc.o"
  "CMakeFiles/bdisk_core.dir/analytic.cc.o.d"
  "CMakeFiles/bdisk_core.dir/config.cc.o"
  "CMakeFiles/bdisk_core.dir/config.cc.o.d"
  "CMakeFiles/bdisk_core.dir/config_io.cc.o"
  "CMakeFiles/bdisk_core.dir/config_io.cc.o.d"
  "CMakeFiles/bdisk_core.dir/csv.cc.o"
  "CMakeFiles/bdisk_core.dir/csv.cc.o.d"
  "CMakeFiles/bdisk_core.dir/experiment.cc.o"
  "CMakeFiles/bdisk_core.dir/experiment.cc.o.d"
  "CMakeFiles/bdisk_core.dir/system.cc.o"
  "CMakeFiles/bdisk_core.dir/system.cc.o.d"
  "CMakeFiles/bdisk_core.dir/table_printer.cc.o"
  "CMakeFiles/bdisk_core.dir/table_printer.cc.o.d"
  "libbdisk_core.a"
  "libbdisk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
