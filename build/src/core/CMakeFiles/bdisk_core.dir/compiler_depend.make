# Empty compiler generated dependencies file for bdisk_core.
# This may be replaced when dependencies are built.
