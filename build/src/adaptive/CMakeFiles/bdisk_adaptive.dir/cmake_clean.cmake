file(REMOVE_RECURSE
  "CMakeFiles/bdisk_adaptive.dir/client_controller.cc.o"
  "CMakeFiles/bdisk_adaptive.dir/client_controller.cc.o.d"
  "CMakeFiles/bdisk_adaptive.dir/server_controller.cc.o"
  "CMakeFiles/bdisk_adaptive.dir/server_controller.cc.o.d"
  "libbdisk_adaptive.a"
  "libbdisk_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
