file(REMOVE_RECURSE
  "libbdisk_adaptive.a"
)
