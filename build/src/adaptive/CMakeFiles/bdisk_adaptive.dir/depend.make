# Empty dependencies file for bdisk_adaptive.
# This may be replaced when dependencies are built.
