# Empty dependencies file for bench_fig05_noise.
# This may be replaced when dependencies are built.
