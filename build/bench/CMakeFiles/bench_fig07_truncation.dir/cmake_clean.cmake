file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_truncation.dir/bench_fig07_truncation.cc.o"
  "CMakeFiles/bench_fig07_truncation.dir/bench_fig07_truncation.cc.o.d"
  "bench_fig07_truncation"
  "bench_fig07_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
