# Empty dependencies file for bench_iv_split.
# This may be replaced when dependencies are built.
