file(REMOVE_RECURSE
  "CMakeFiles/bench_iv_split.dir/bench_iv_split.cc.o"
  "CMakeFiles/bench_iv_split.dir/bench_iv_split.cc.o.d"
  "bench_iv_split"
  "bench_iv_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iv_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
