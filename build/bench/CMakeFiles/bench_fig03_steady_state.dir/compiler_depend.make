# Empty compiler generated dependencies file for bench_fig03_steady_state.
# This may be replaced when dependencies are built.
