
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig04_warmup.cc" "bench/CMakeFiles/bench_fig04_warmup.dir/bench_fig04_warmup.cc.o" "gcc" "bench/CMakeFiles/bench_fig04_warmup.dir/bench_fig04_warmup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bdisk_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bdisk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bdisk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/bdisk_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/bdisk_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bdisk_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bdisk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bdisk_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/bdisk_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bdisk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
