# Empty dependencies file for bench_fig04_warmup.
# This may be replaced when dependencies are built.
