file(REMOVE_RECURSE
  "CMakeFiles/bench_air_index.dir/bench_air_index.cc.o"
  "CMakeFiles/bench_air_index.dir/bench_air_index.cc.o.d"
  "bench_air_index"
  "bench_air_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_air_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
