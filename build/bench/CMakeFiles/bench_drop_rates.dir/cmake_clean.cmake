file(REMOVE_RECURSE
  "CMakeFiles/bench_drop_rates.dir/bench_drop_rates.cc.o"
  "CMakeFiles/bench_drop_rates.dir/bench_drop_rates.cc.o.d"
  "bench_drop_rates"
  "bench_drop_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drop_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
