# Empty dependencies file for bench_drop_rates.
# This may be replaced when dependencies are built.
