# Empty dependencies file for bench_fig06_threshold.
# This may be replaced when dependencies are built.
