file(REMOVE_RECURSE
  "libbdisk_bench_harness.a"
)
