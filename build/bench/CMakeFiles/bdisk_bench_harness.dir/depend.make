# Empty dependencies file for bdisk_bench_harness.
# This may be replaced when dependencies are built.
