file(REMOVE_RECURSE
  "CMakeFiles/bdisk_bench_harness.dir/harness.cc.o"
  "CMakeFiles/bdisk_bench_harness.dir/harness.cc.o.d"
  "libbdisk_bench_harness.a"
  "libbdisk_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
