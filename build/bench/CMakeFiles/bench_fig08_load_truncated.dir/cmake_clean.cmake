file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_load_truncated.dir/bench_fig08_load_truncated.cc.o"
  "CMakeFiles/bench_fig08_load_truncated.dir/bench_fig08_load_truncated.cc.o.d"
  "bench_fig08_load_truncated"
  "bench_fig08_load_truncated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_load_truncated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
