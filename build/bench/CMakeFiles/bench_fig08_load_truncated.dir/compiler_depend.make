# Empty compiler generated dependencies file for bench_fig08_load_truncated.
# This may be replaced when dependencies are built.
