# Empty dependencies file for bench_fig01_program.
# This may be replaced when dependencies are built.
