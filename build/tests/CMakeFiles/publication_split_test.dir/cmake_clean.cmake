file(REMOVE_RECURSE
  "CMakeFiles/publication_split_test.dir/publication_split_test.cc.o"
  "CMakeFiles/publication_split_test.dir/publication_split_test.cc.o.d"
  "publication_split_test"
  "publication_split_test.pdb"
  "publication_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
