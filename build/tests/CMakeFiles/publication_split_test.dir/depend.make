# Empty dependencies file for publication_split_test.
# This may be replaced when dependencies are built.
