# Empty dependencies file for value_functions_test.
# This may be replaced when dependencies are built.
