file(REMOVE_RECURSE
  "CMakeFiles/value_functions_test.dir/value_functions_test.cc.o"
  "CMakeFiles/value_functions_test.dir/value_functions_test.cc.o.d"
  "value_functions_test"
  "value_functions_test.pdb"
  "value_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
