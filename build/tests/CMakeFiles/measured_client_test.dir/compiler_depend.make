# Empty compiler generated dependencies file for measured_client_test.
# This may be replaced when dependencies are built.
