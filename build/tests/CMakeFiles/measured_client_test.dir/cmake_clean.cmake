file(REMOVE_RECURSE
  "CMakeFiles/measured_client_test.dir/measured_client_test.cc.o"
  "CMakeFiles/measured_client_test.dir/measured_client_test.cc.o.d"
  "measured_client_test"
  "measured_client_test.pdb"
  "measured_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
