file(REMOVE_RECURSE
  "CMakeFiles/threshold_filter_test.dir/threshold_filter_test.cc.o"
  "CMakeFiles/threshold_filter_test.dir/threshold_filter_test.cc.o.d"
  "threshold_filter_test"
  "threshold_filter_test.pdb"
  "threshold_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
