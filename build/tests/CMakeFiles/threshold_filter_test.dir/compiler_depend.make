# Empty compiler generated dependencies file for threshold_filter_test.
# This may be replaced when dependencies are built.
