# Empty dependencies file for broadcast_program_test.
# This may be replaced when dependencies are built.
