file(REMOVE_RECURSE
  "CMakeFiles/broadcast_program_test.dir/broadcast_program_test.cc.o"
  "CMakeFiles/broadcast_program_test.dir/broadcast_program_test.cc.o.d"
  "broadcast_program_test"
  "broadcast_program_test.pdb"
  "broadcast_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
