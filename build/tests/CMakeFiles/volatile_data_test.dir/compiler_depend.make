# Empty compiler generated dependencies file for volatile_data_test.
# This may be replaced when dependencies are built.
