file(REMOVE_RECURSE
  "CMakeFiles/volatile_data_test.dir/volatile_data_test.cc.o"
  "CMakeFiles/volatile_data_test.dir/volatile_data_test.cc.o.d"
  "volatile_data_test"
  "volatile_data_test.pdb"
  "volatile_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volatile_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
