# Empty compiler generated dependencies file for air_index_test.
# This may be replaced when dependencies are built.
