file(REMOVE_RECURSE
  "CMakeFiles/air_index_test.dir/air_index_test.cc.o"
  "CMakeFiles/air_index_test.dir/air_index_test.cc.o.d"
  "air_index_test"
  "air_index_test.pdb"
  "air_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
