file(REMOVE_RECURSE
  "CMakeFiles/update_generator_test.dir/update_generator_test.cc.o"
  "CMakeFiles/update_generator_test.dir/update_generator_test.cc.o.d"
  "update_generator_test"
  "update_generator_test.pdb"
  "update_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
