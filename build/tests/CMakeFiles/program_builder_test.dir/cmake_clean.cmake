file(REMOVE_RECURSE
  "CMakeFiles/program_builder_test.dir/program_builder_test.cc.o"
  "CMakeFiles/program_builder_test.dir/program_builder_test.cc.o.d"
  "program_builder_test"
  "program_builder_test.pdb"
  "program_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
