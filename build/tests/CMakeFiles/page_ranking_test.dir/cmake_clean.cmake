file(REMOVE_RECURSE
  "CMakeFiles/page_ranking_test.dir/page_ranking_test.cc.o"
  "CMakeFiles/page_ranking_test.dir/page_ranking_test.cc.o.d"
  "page_ranking_test"
  "page_ranking_test.pdb"
  "page_ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
