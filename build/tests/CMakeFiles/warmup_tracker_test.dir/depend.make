# Empty dependencies file for warmup_tracker_test.
# This may be replaced when dependencies are built.
