file(REMOVE_RECURSE
  "CMakeFiles/warmup_tracker_test.dir/warmup_tracker_test.cc.o"
  "CMakeFiles/warmup_tracker_test.dir/warmup_tracker_test.cc.o.d"
  "warmup_tracker_test"
  "warmup_tracker_test.pdb"
  "warmup_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
