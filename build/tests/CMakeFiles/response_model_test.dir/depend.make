# Empty dependencies file for response_model_test.
# This may be replaced when dependencies are built.
