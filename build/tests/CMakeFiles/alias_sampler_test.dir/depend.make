# Empty dependencies file for alias_sampler_test.
# This may be replaced when dependencies are built.
