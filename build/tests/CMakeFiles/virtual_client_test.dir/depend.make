# Empty dependencies file for virtual_client_test.
# This may be replaced when dependencies are built.
