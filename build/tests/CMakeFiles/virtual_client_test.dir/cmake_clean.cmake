file(REMOVE_RECURSE
  "CMakeFiles/virtual_client_test.dir/virtual_client_test.cc.o"
  "CMakeFiles/virtual_client_test.dir/virtual_client_test.cc.o.d"
  "virtual_client_test"
  "virtual_client_test.pdb"
  "virtual_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
