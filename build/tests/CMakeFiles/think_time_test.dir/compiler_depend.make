# Empty compiler generated dependencies file for think_time_test.
# This may be replaced when dependencies are built.
