file(REMOVE_RECURSE
  "CMakeFiles/think_time_test.dir/think_time_test.cc.o"
  "CMakeFiles/think_time_test.dir/think_time_test.cc.o.d"
  "think_time_test"
  "think_time_test.pdb"
  "think_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/think_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
