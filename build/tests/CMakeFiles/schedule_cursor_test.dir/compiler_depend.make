# Empty compiler generated dependencies file for schedule_cursor_test.
# This may be replaced when dependencies are built.
