file(REMOVE_RECURSE
  "CMakeFiles/schedule_cursor_test.dir/schedule_cursor_test.cc.o"
  "CMakeFiles/schedule_cursor_test.dir/schedule_cursor_test.cc.o.d"
  "schedule_cursor_test"
  "schedule_cursor_test.pdb"
  "schedule_cursor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
