file(REMOVE_RECURSE
  "CMakeFiles/pull_queue_test.dir/pull_queue_test.cc.o"
  "CMakeFiles/pull_queue_test.dir/pull_queue_test.cc.o.d"
  "pull_queue_test"
  "pull_queue_test.pdb"
  "pull_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pull_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
