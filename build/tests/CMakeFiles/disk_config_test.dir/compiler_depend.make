# Empty compiler generated dependencies file for disk_config_test.
# This may be replaced when dependencies are built.
