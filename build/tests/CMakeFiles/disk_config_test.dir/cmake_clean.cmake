file(REMOVE_RECURSE
  "CMakeFiles/disk_config_test.dir/disk_config_test.cc.o"
  "CMakeFiles/disk_config_test.dir/disk_config_test.cc.o.d"
  "disk_config_test"
  "disk_config_test.pdb"
  "disk_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
