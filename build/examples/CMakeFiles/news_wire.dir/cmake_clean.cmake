file(REMOVE_RECURSE
  "CMakeFiles/news_wire.dir/news_wire.cpp.o"
  "CMakeFiles/news_wire.dir/news_wire.cpp.o.d"
  "news_wire"
  "news_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
