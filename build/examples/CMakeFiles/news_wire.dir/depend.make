# Empty dependencies file for news_wire.
# This may be replaced when dependencies are built.
