# Empty dependencies file for traveler_info.
# This may be replaced when dependencies are built.
