file(REMOVE_RECURSE
  "CMakeFiles/traveler_info.dir/traveler_info.cpp.o"
  "CMakeFiles/traveler_info.dir/traveler_info.cpp.o.d"
  "traveler_info"
  "traveler_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traveler_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
