file(REMOVE_RECURSE
  "CMakeFiles/bdisk_sim_cli.dir/bdisk_sim.cc.o"
  "CMakeFiles/bdisk_sim_cli.dir/bdisk_sim.cc.o.d"
  "bdisk_sim"
  "bdisk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdisk_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
