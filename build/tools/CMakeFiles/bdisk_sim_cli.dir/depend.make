# Empty dependencies file for bdisk_sim_cli.
# This may be replaced when dependencies are built.
