# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/bdisk_sim" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_print_config "/root/repo/build/tools/bdisk_sim" "--print-config")
set_tests_properties(cli_print_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_recommend "/root/repo/build/tools/bdisk_sim" "--recommend")
set_tests_properties(cli_recommend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_quick_steady "/root/repo/build/tools/bdisk_sim" "--quick" "--set" "server_db_size=100" "--set" "disk_sizes=10,40,50" "--set" "cache_size=10" "--set" "server_queue_size=10" "--set" "think_time_ratio=10")
set_tests_properties(cli_quick_steady PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_quick_csv "/root/repo/build/tools/bdisk_sim" "--quick" "--csv" "--set" "server_db_size=100" "--set" "disk_sizes=10,40,50" "--set" "cache_size=10" "--set" "server_queue_size=10" "--set" "mode=pull")
set_tests_properties(cli_quick_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_key "/root/repo/build/tools/bdisk_sim" "--set" "bogus=1")
set_tests_properties(cli_rejects_unknown_key PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_invalid_config "/root/repo/build/tools/bdisk_sim" "--set" "pull_bw=2.0")
set_tests_properties(cli_rejects_invalid_config PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
