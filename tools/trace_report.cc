// trace_report — analyzer for bdisk_sim --trace JSONL output.
//
// Reads a structured trace (one JSON object per line, as written by
// obs::TraceSink::ToJsonl) and reports:
//   * per-page latency breakdown (deliveries, mean/max wait) for the most
//     requested pages,
//   * reconstructed request → transmit → delivery spans, with a few
//     examples laid out as timelines,
//   * a slot-utilization timeline (push/pull/idle mix per time bin).
//
//   bdisk_sim --set mode=ipp --trace out.jsonl
//   trace_report out.jsonl
//
// Exits 1 if the trace contains no reconstructible span (e.g. the file is
// not a bdisk trace), 2 on usage errors.

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Record {
  double t = 0.0;
  std::string ev;
  std::int64_t client = -1;
  std::int64_t page = -1;
  double value = 0.0;
};

bool ParseLine(const std::string& line, Record* out) {
  char ev[32];
  const int matched = std::sscanf(
      line.c_str(),
      " { \"t\" : %lf , \"ev\" : \"%31[^\"]\" , \"client\" : %" SCNd64
      " , \"page\" : %" SCNd64 " , \"v\" : %lf }",
      &out->t, ev, &out->client, &out->page, &out->value);
  if (matched != 5) return false;
  out->ev = ev;
  return true;
}

struct PageStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t deliveries = 0;
  double wait_sum = 0.0;
  double wait_max = 0.0;
};

// An in-progress pull: one client waiting on one page.
struct PendingSpan {
  double request_time = -1.0;
  double submit_time = -1.0;
  double slot_time = -1.0;  // Decision time of the slot that carried it.
};

struct Span {
  std::int64_t client = -1;
  std::int64_t page = -1;
  PendingSpan times;
  double delivery_time = 0.0;
  double wait = 0.0;
};

void PrintUsage() {
  std::printf(
      "usage: trace_report FILE.jsonl [--top N] [--bins N] [--spans N]\n"
      "  --top N    pages in the latency table (default 10)\n"
      "  --bins N   slot-utilization time bins (default 20)\n"
      "  --spans N  example spans to print (default 5)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  std::size_t bins = 20;
  std::size_t span_examples = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--top") {
      top_n = static_cast<std::size_t>(std::atol(next_value("--top")));
    } else if (arg == "--bins") {
      bins = static_cast<std::size_t>(std::atol(next_value("--bins")));
    } else if (arg == "--spans") {
      span_examples =
          static_cast<std::size_t>(std::atol(next_value("--spans")));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "multiple input files given\n");
      return 2;
    }
  }
  if (path.empty() || bins == 0) {
    PrintUsage();
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }

  std::map<std::int64_t, PageStats> pages;
  // (client, page) -> in-progress span. Slot records carry client -1, so
  // the slot that served a page is matched by page id afterwards.
  std::map<std::pair<std::int64_t, std::int64_t>, PendingSpan> pending;
  std::map<std::int64_t, double> last_slot_for_page;
  std::vector<Span> spans;
  struct SlotSample {
    double t;
    int kind;  // 0 push, 1 pull, 2 idle.
  };
  std::vector<SlotSample> slots;

  std::uint64_t lines = 0, parsed = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    ++lines;
    Record r;
    if (!ParseLine(line, &r)) continue;
    ++parsed;

    if (r.ev == "request") {
      ++pages[r.page].requests;
    } else if (r.ev == "cache_hit") {
      ++pages[r.page].hits;
    } else if (r.ev == "cache_miss") {
      pending[{r.client, r.page}] = PendingSpan{r.t, -1.0, -1.0};
    } else if (r.ev == "submit_accepted" || r.ev == "submit_coalesced") {
      const auto it = pending.find({r.client, r.page});
      if (it != pending.end() && it->second.submit_time < 0.0) {
        it->second.submit_time = r.t;
      }
    } else if (r.ev == "slot_push" || r.ev == "slot_pull") {
      last_slot_for_page[r.page] = r.t;
      slots.push_back({r.t, r.ev == "slot_push" ? 0 : 1});
    } else if (r.ev == "slot_idle") {
      slots.push_back({r.t, 2});
    } else if (r.ev == "delivery") {
      PageStats& stats = pages[r.page];
      ++stats.deliveries;
      stats.wait_sum += r.value;
      stats.wait_max = std::max(stats.wait_max, r.value);
      const auto it = pending.find({r.client, r.page});
      if (it != pending.end()) {
        Span span;
        span.client = r.client;
        span.page = r.page;
        span.times = it->second;
        const auto slot = last_slot_for_page.find(r.page);
        if (slot != last_slot_for_page.end() &&
            slot->second >= span.times.request_time) {
          span.times.slot_time = slot->second;
        }
        span.delivery_time = r.t;
        span.wait = r.value;
        spans.push_back(span);
        pending.erase(it);
      }
    }
  }

  std::printf("trace: %s — %" PRIu64 " lines, %" PRIu64 " parsed\n",
              path.c_str(), lines, parsed);

  // --- Per-page latency breakdown ----------------------------------------
  std::vector<std::pair<std::int64_t, PageStats>> ranked(pages.begin(),
                                                         pages.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.deliveries != b.second.deliveries) {
      return a.second.deliveries > b.second.deliveries;
    }
    return a.first < b.first;
  });
  std::printf("\nper-page latency (top %zu by deliveries)\n",
              std::min(top_n, ranked.size()));
  std::printf("%8s %10s %8s %12s %10s %10s\n", "page", "requests", "hits",
              "deliveries", "mean wait", "max wait");
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const PageStats& s = ranked[i].second;
    std::printf("%8" PRId64 " %10" PRIu64 " %8" PRIu64 " %12" PRIu64
                " %10.2f %10.2f\n",
                ranked[i].first, s.requests, s.hits, s.deliveries,
                s.deliveries == 0
                    ? 0.0
                    : s.wait_sum / static_cast<double>(s.deliveries),
                s.wait_max);
  }

  // --- Reconstructed spans ------------------------------------------------
  std::uint64_t with_transmit = 0;
  for (const Span& s : spans) {
    if (s.times.slot_time >= 0.0) ++with_transmit;
  }
  std::printf("\nspans reconstructed: %zu (with transmit slot: %" PRIu64
              ")\n",
              spans.size(), with_transmit);
  for (std::size_t i = 0; i < spans.size() && i < span_examples; ++i) {
    const Span& s = spans[i];
    std::printf("  client %" PRId64 " page %" PRId64 ": request t=%.1f",
                s.client, s.page, s.times.request_time);
    if (s.times.submit_time >= 0.0) {
      std::printf(" -> submit t=%.1f", s.times.submit_time);
    }
    if (s.times.slot_time >= 0.0) {
      std::printf(" -> transmit t=%.1f", s.times.slot_time);
    }
    std::printf(" -> delivery t=%.1f (wait %.1f)\n", s.delivery_time,
                s.wait);
  }

  // --- Slot-utilization timeline ------------------------------------------
  if (!slots.empty()) {
    double t_lo = slots.front().t, t_hi = slots.front().t;
    for (const SlotSample& s : slots) {
      t_lo = std::min(t_lo, s.t);
      t_hi = std::max(t_hi, s.t);
    }
    const double width = (t_hi - t_lo) / static_cast<double>(bins);
    std::vector<std::array<std::uint64_t, 3>> counts(
        bins, std::array<std::uint64_t, 3>{});
    for (const SlotSample& s : slots) {
      std::size_t b = width <= 0.0 ? 0
                                   : static_cast<std::size_t>(
                                         (s.t - t_lo) / width);
      if (b >= bins) b = bins - 1;
      ++counts[b][static_cast<std::size_t>(s.kind)];
    }
    std::printf("\nslot utilization (%zu bins over t=[%.0f, %.0f])\n", bins,
                t_lo, t_hi);
    std::printf("%18s %8s %8s %8s\n", "bin", "push", "pull", "idle");
    for (std::size_t b = 0; b < bins; ++b) {
      const double total = static_cast<double>(counts[b][0] + counts[b][1] +
                                               counts[b][2]);
      if (total == 0.0) continue;
      std::printf("[%7.0f,%7.0f) %7.1f%% %7.1f%% %7.1f%%\n",
                  t_lo + width * static_cast<double>(b),
                  t_lo + width * static_cast<double>(b + 1),
                  100.0 * static_cast<double>(counts[b][0]) / total,
                  100.0 * static_cast<double>(counts[b][1]) / total,
                  100.0 * static_cast<double>(counts[b][2]) / total);
    }
  }

  if (spans.empty()) {
    std::fprintf(stderr,
                 "no request->delivery span could be reconstructed\n");
    return 1;
  }
  return 0;
}
