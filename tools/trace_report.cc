// trace_report — analyzer for bdisk_sim --trace JSONL output.
//
// Reads a structured trace (one JSON object per line, as written by
// obs::TraceSink::ToJsonl) and reports:
//   * per-page latency breakdown (deliveries, mean/max wait) for the most
//     requested pages,
//   * reconstructed request → transmit → delivery spans, with a few
//     examples laid out as timelines,
//   * a slot-utilization timeline (push/pull/idle mix per time bin).
//
// With --spans, switches to the request-lifecycle attribution report built
// on obs::SpanAssembler: per-request waterfalls, the phase breakdown
// (queue wait / broadcast wait / transmit, summing to the mean response),
// and per-page / per-probability-band attribution tables.
//
//   bdisk_sim --set mode=ipp --trace out.jsonl
//   trace_report out.jsonl
//   trace_report out.jsonl --spans
//
// Parsing and joining share the library code the tests pin
// (obs::ParseTraceJsonlLine, obs::SpanAssembler), so this tool cannot
// drift from the exporter.
//
// Exits 1 if the trace contains no reconstructible span (e.g. the file is
// not a bdisk trace), 2 on usage errors.

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/span_assembler.h"
#include "obs/trace_sink.h"

namespace {

using bdisk::obs::PhaseBreakdown;
using bdisk::obs::RequestSpan;
using bdisk::obs::SpanEvent;
using bdisk::obs::SpanOutcome;
using bdisk::obs::SpanRecord;

void PrintUsage() {
  std::printf(
      "usage: trace_report FILE.jsonl [--spans] [--top N] [--bins N]\n"
      "                    [--examples N] [--truncated] [--csv FILE]\n"
      "  --spans       request-lifecycle attribution report (waterfalls,\n"
      "                phase breakdown, per-page and per-band tables)\n"
      "  --csv FILE    with --spans: also export the phase breakdown and\n"
      "                the per-page / per-band attribution tables as one\n"
      "                long-format CSV (\"-\" for stdout)\n"
      "  --top N       pages in the per-page tables (default 10)\n"
      "  --bins N      slot-utilization time bins (default 20)\n"
      "  --examples N  example spans/waterfalls to print (default 5)\n"
      "  --truncated   treat the file head as clipped (ring overflow);\n"
      "                auto-detected when the trace does not start at t=0\n");
}

const char* OutcomeLabel(const RequestSpan& s) {
  return bdisk::obs::SpanOutcomeName(s.outcome);
}

// --- Aggregation over spans ------------------------------------------------

struct PageAgg {
  std::uint64_t requests = 0;  // Complete, non-truncated spans.
  std::uint64_t hits = 0;
  double response_sum = 0.0;
  double queue_wait_sum = 0.0;
  double broadcast_wait_sum = 0.0;
  double response_max = 0.0;

  double MeanResponse() const {
    return requests == 0 ? 0.0
                         : response_sum / static_cast<double>(requests);
  }
};

std::map<std::uint32_t, PageAgg> AggregateByPage(
    const std::vector<RequestSpan>& spans) {
  std::map<std::uint32_t, PageAgg> pages;
  for (const RequestSpan& s : spans) {
    if (!s.Complete() || s.truncated) continue;
    PageAgg& agg = pages[s.page];
    ++agg.requests;
    if (s.outcome == SpanOutcome::kCacheHit) ++agg.hits;
    agg.response_sum += s.response;
    agg.queue_wait_sum += s.QueueWait();
    agg.broadcast_wait_sum += s.BroadcastWait();
    agg.response_max = std::max(agg.response_max, s.response);
  }
  return pages;
}

void PrintWaterfalls(const std::vector<RequestSpan>& spans,
                     std::size_t examples) {
  std::printf("\nper-request waterfalls (first %zu non-hit spans)\n",
              examples);
  std::size_t shown = 0;
  for (const RequestSpan& s : spans) {
    if (shown >= examples) break;
    if (!s.Complete() || s.truncated ||
        s.outcome == SpanOutcome::kCacheHit) {
      continue;
    }
    ++shown;
    std::printf("  client %" PRIu32 " page %" PRIu32 " [%s]\n", s.client,
                s.page, OutcomeLabel(s));
    std::printf("    t=%10.1f  request (miss%s)\n", s.request_time,
                s.filtered ? ", filtered" : "");
    if (s.submitted) {
      std::printf("    t=%10.1f  submit%s%s\n", s.submit_time,
                  s.coalesced ? " (coalesced)" : "",
                  s.drops > 0 ? " (later drops)" : "");
    }
    if (s.retries > 0) {
      std::printf("    %13s retries x%" PRIu32 "\n", "", s.retries);
    }
    if (s.slot_time >= 0.0) {
      const double wait = s.outcome == SpanOutcome::kPullServed
                              ? s.QueueWait()
                              : s.BroadcastWait();
      const char* wait_name = s.outcome == SpanOutcome::kPullServed
                                  ? "queue_wait"
                                  : "broadcast_wait";
      std::printf("    t=%10.1f  slot %-5s %s=%.1f\n", s.slot_time,
                  s.outcome == SpanOutcome::kPushServed ? "push" : "pull",
                  wait_name, wait);
    }
    std::printf("    t=%10.1f  delivery   transmit=%.1f  response=%.1f\n",
                s.delivery_time, s.Transmit(), s.response);
  }
  if (shown == 0) std::printf("  (none)\n");
}

void PrintPhaseBreakdown(const PhaseBreakdown& b) {
  std::printf("\nphase attribution (complete, non-truncated spans)\n");
  std::printf("  spans %" PRIu64 "  (hits %" PRIu64 ", pull %" PRIu64
              ", snooped %" PRIu64 ", push %" PRIu64 ")\n",
              b.spans, b.hits, b.pull_served, b.snooped, b.push_served);
  std::printf("  excluded: truncated %" PRIu64 ", incomplete %" PRIu64 "\n",
              b.truncated, b.incomplete);
  std::printf("  coalesced spans %" PRIu64 ", dropped submits %" PRIu64
              ", retries %" PRIu64 "\n",
              b.coalesced, b.drops, b.retries);
  std::printf("  %-20s %10s\n", "phase", "mean");
  std::printf("  %-20s %10.3f\n", "queue wait", b.mean_queue_wait);
  std::printf("  %-20s %10.3f\n", "broadcast wait", b.mean_broadcast_wait);
  std::printf("  %-20s %10.3f\n", "transmit", b.mean_transmit);
  if (b.mean_other != 0.0) {
    std::printf("  %-20s %10.3f\n", "other", b.mean_other);
  }
  std::printf("  %-20s %10.3f\n", "= mean response", b.mean_response);
}

void PrintPerPageAttribution(const std::map<std::uint32_t, PageAgg>& pages,
                             std::size_t top_n) {
  std::vector<std::pair<std::uint32_t, PageAgg>> ranked(pages.begin(),
                                                        pages.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.requests != b.second.requests) {
      return a.second.requests > b.second.requests;
    }
    return a.first < b.first;
  });
  std::printf("\nper-page attribution (top %zu by requests)\n",
              std::min(top_n, ranked.size()));
  std::printf("%8s %9s %7s %10s %10s %10s %9s\n", "page", "requests",
              "hit%", "mean resp", "q-wait", "bc-wait", "max resp");
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const PageAgg& a = ranked[i].second;
    const double n = static_cast<double>(a.requests);
    std::printf("%8" PRIu32 " %9" PRIu64 " %6.1f%% %10.2f %10.2f %10.2f "
                "%9.1f\n",
                ranked[i].first, a.requests,
                100.0 * static_cast<double>(a.hits) / n, a.MeanResponse(),
                a.queue_wait_sum / n, a.broadcast_wait_sum / n,
                a.response_max);
  }
}

// Bands of roughly equal *request mass*: pages ranked by observed request
// count, cut where cumulative requests cross each 20% of the total. Band 1
// is the empirically hottest slice — the observable stand-in for the
// access-probability deciles the workload generator used.
struct BandRow {
  int band = 0;
  std::size_t pages = 0;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  double response_sum = 0.0;
  double queue_wait_sum = 0.0;
  double broadcast_wait_sum = 0.0;
};

std::vector<BandRow> ComputeBands(
    const std::map<std::uint32_t, PageAgg>& pages) {
  std::vector<std::pair<std::uint32_t, PageAgg>> ranked(pages.begin(),
                                                        pages.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.requests != b.second.requests) {
      return a.second.requests > b.second.requests;
    }
    return a.first < b.first;
  });
  std::uint64_t total_requests = 0;
  for (const auto& [page, agg] : ranked) total_requests += agg.requests;
  std::vector<BandRow> rows;
  if (total_requests == 0) return rows;

  constexpr int kBands = 5;
  std::size_t i = 0;
  std::uint64_t cumulative = 0;
  for (int band = 1; band <= kBands && i < ranked.size(); ++band) {
    const std::uint64_t limit =
        total_requests * static_cast<std::uint64_t>(band) / kBands;
    BandRow row;
    row.band = band;
    while (i < ranked.size() && (cumulative < limit || row.pages == 0)) {
      const PageAgg& a = ranked[i].second;
      cumulative += a.requests;
      row.requests += a.requests;
      row.hits += a.hits;
      row.response_sum += a.response_sum;
      row.queue_wait_sum += a.queue_wait_sum;
      row.broadcast_wait_sum += a.broadcast_wait_sum;
      ++row.pages;
      ++i;
    }
    if (row.requests > 0) rows.push_back(row);
  }
  return rows;
}

void PrintPerBandAttribution(const std::map<std::uint32_t, PageAgg>& pages) {
  const std::vector<BandRow> rows = ComputeBands(pages);
  if (rows.empty()) return;
  std::printf("\nper-probability-band attribution (5 bands of ~20%% "
              "request mass, hottest first)\n");
  std::printf("%6s %8s %9s %7s %10s %10s %10s\n", "band", "pages",
              "requests", "hit%", "mean resp", "q-wait", "bc-wait");
  for (const BandRow& row : rows) {
    const double n = static_cast<double>(row.requests);
    std::printf("%6d %8zu %9" PRIu64 " %6.1f%% %10.2f %10.2f %10.2f\n",
                row.band, row.pages, row.requests,
                100.0 * static_cast<double>(row.hits) / n,
                row.response_sum / n, row.queue_wait_sum / n,
                row.broadcast_wait_sum / n);
  }
}

// Long-format CSV of the --spans report: one rectangular table whose
// `section` column distinguishes the phase breakdown ("phase"), the
// per-page attribution ("page", every page — no top-N clipping), and the
// request-mass bands ("band"). Spreadsheet- and pandas-friendly.
bool WriteSpansCsv(const std::string& path, const PhaseBreakdown& b,
                   const std::map<std::uint32_t, PageAgg>& pages) {
  std::string body;
  body +=
      "section,key,pages,requests,hit_pct,mean_response,mean_queue_wait,"
      "mean_broadcast_wait,mean_transmit,max_response\n";
  char line[256];
  const auto append_row = [&body, &line](const char* section,
                                         const std::string& key,
                                         std::size_t page_count,
                                         std::uint64_t requests,
                                         double hit_pct, double mean_response,
                                         double queue_wait,
                                         double broadcast_wait) {
    std::snprintf(line, sizeof(line),
                  "%s,%s,%zu,%" PRIu64 ",%.4f,%.6g,%.6g,%.6g,,\n", section,
                  key.c_str(), page_count, requests, hit_pct, mean_response,
                  queue_wait, broadcast_wait);
    body += line;
  };
  std::snprintf(line, sizeof(line),
                "phase,all,%zu,%" PRIu64 ",%.4f,%.6g,%.6g,%.6g,%.6g,\n",
                pages.size(), b.spans,
                b.spans == 0 ? 0.0
                             : 100.0 * static_cast<double>(b.hits) /
                                   static_cast<double>(b.spans),
                b.mean_response, b.mean_queue_wait, b.mean_broadcast_wait,
                b.mean_transmit);
  body += line;
  for (const auto& [page, a] : pages) {
    const double n = static_cast<double>(a.requests);
    std::snprintf(line, sizeof(line),
                  "page,%" PRIu32 ",1,%" PRIu64 ",%.4f,%.6g,%.6g,%.6g,,%.6g\n",
                  page, a.requests,
                  100.0 * static_cast<double>(a.hits) / n, a.MeanResponse(),
                  a.queue_wait_sum / n, a.broadcast_wait_sum / n,
                  a.response_max);
    body += line;
  }
  for (const BandRow& row : ComputeBands(pages)) {
    const double n = static_cast<double>(row.requests);
    append_row("band", std::to_string(row.band), row.pages, row.requests,
               100.0 * static_cast<double>(row.hits) / n,
               row.response_sum / n, row.queue_wait_sum / n,
               row.broadcast_wait_sum / n);
  }
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  std::size_t bins = 20;
  std::size_t examples = 5;
  bool spans_mode = false;
  bool force_truncated = false;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--spans") {
      spans_mode = true;
    } else if (arg == "--truncated") {
      force_truncated = true;
    } else if (arg == "--csv") {
      csv_path = next_value("--csv");
    } else if (arg == "--top") {
      top_n = static_cast<std::size_t>(std::atol(next_value("--top")));
    } else if (arg == "--bins") {
      bins = static_cast<std::size_t>(std::atol(next_value("--bins")));
    } else if (arg == "--examples") {
      examples =
          static_cast<std::size_t>(std::atol(next_value("--examples")));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "multiple input files given\n");
      return 2;
    }
  }
  if (path.empty() || bins == 0) {
    PrintUsage();
    return 2;
  }
  if (!csv_path.empty() && !spans_mode) {
    std::fprintf(stderr, "--csv needs --spans (it exports that report)\n");
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }

  std::vector<SpanRecord> records;
  std::uint64_t lines = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    ++lines;
    SpanRecord r;
    if (bdisk::obs::ParseTraceJsonlLine(line, &r)) records.push_back(r);
  }

  // A full trace starts with the measured client's first access at t=0; a
  // later first timestamp means the ring dropped its head.
  const bool truncated =
      force_truncated || (!records.empty() && records.front().time > 0.0);

  bdisk::obs::SpanAssembler assembler(truncated);
  assembler.FeedAll(records);
  const std::vector<RequestSpan> spans = assembler.Finish();
  const PhaseBreakdown breakdown = bdisk::obs::Attribute(spans);

  std::printf("trace: %s — %" PRIu64 " lines, %zu parsed%s\n", path.c_str(),
              lines, records.size(),
              truncated ? " (head truncated)" : "");
  if (assembler.OrphanRecords() > 0) {
    std::printf("WARNING: %" PRIu64
                " client records matched no span (inconsistent trace)\n",
                assembler.OrphanRecords());
  }

  if (spans_mode) {
    const std::map<std::uint32_t, PageAgg> pages = AggregateByPage(spans);
    // --csv - claims stdout for the CSV; the human report goes away.
    if (csv_path != "-") {
      PrintWaterfalls(spans, examples);
      PrintPhaseBreakdown(breakdown);
      PrintPerPageAttribution(pages, top_n);
      PrintPerBandAttribution(pages);
    }
    if (!csv_path.empty() &&
        !WriteSpansCsv(csv_path, breakdown, pages)) {
      return 2;
    }
  } else {
    // --- Per-page latency table (delivery-ranked, legacy report) ---------
    const std::map<std::uint32_t, PageAgg> pages = AggregateByPage(spans);
    struct Legacy {
      std::uint32_t page;
      std::uint64_t requests, hits, deliveries;
      double wait_sum, wait_max;
    };
    std::vector<Legacy> ranked;
    for (const auto& [page, a] : pages) {
      ranked.push_back({page, a.requests, a.hits, a.requests - a.hits,
                        a.response_sum, a.response_max});
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.deliveries != b.deliveries) return a.deliveries > b.deliveries;
      return a.page < b.page;
    });
    std::printf("\nper-page latency (top %zu by deliveries)\n",
                std::min(top_n, ranked.size()));
    std::printf("%8s %10s %8s %12s %10s %10s\n", "page", "requests", "hits",
                "deliveries", "mean wait", "max wait");
    for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
      const Legacy& s = ranked[i];
      std::printf("%8" PRIu32 " %10" PRIu64 " %8" PRIu64 " %12" PRIu64
                  " %10.2f %10.2f\n",
                  s.page, s.requests, s.hits, s.deliveries,
                  s.deliveries == 0
                      ? 0.0
                      : s.wait_sum / static_cast<double>(s.deliveries),
                  s.wait_max);
    }

    // --- Reconstructed spans ---------------------------------------------
    std::uint64_t delivered = 0, with_slot = 0;
    for (const RequestSpan& s : spans) {
      if (!s.Complete() || s.outcome == SpanOutcome::kCacheHit) continue;
      ++delivered;
      if (s.slot_time >= 0.0) ++with_slot;
    }
    std::printf("\nspans reconstructed: %" PRIu64
                " (with transmit slot: %" PRIu64 ")\n",
                delivered, with_slot);
    std::size_t shown = 0;
    for (const RequestSpan& s : spans) {
      if (shown >= examples) break;
      if (!s.Complete() || s.outcome == SpanOutcome::kCacheHit) continue;
      ++shown;
      std::printf("  client %" PRIu32 " page %" PRIu32 ": request t=%.1f",
                  s.client, s.page, s.request_time);
      if (s.submitted) std::printf(" -> submit t=%.1f", s.submit_time);
      if (s.slot_time >= 0.0) {
        std::printf(" -> transmit t=%.1f", s.slot_time);
      }
      std::printf(" -> delivery t=%.1f (wait %.1f)\n", s.delivery_time,
                  s.response);
    }

    // --- Slot-utilization timeline ---------------------------------------
    struct SlotSampleRow {
      double t;
      int kind;  // 0 push, 1 pull, 2 idle.
    };
    std::vector<SlotSampleRow> slots;
    for (const SpanRecord& r : records) {
      if (r.event == SpanEvent::kSlotPush) {
        slots.push_back({r.time, 0});
      } else if (r.event == SpanEvent::kSlotPull) {
        slots.push_back({r.time, 1});
      } else if (r.event == SpanEvent::kSlotIdle) {
        slots.push_back({r.time, 2});
      }
    }
    if (!slots.empty()) {
      double t_lo = slots.front().t, t_hi = slots.front().t;
      for (const SlotSampleRow& s : slots) {
        t_lo = std::min(t_lo, s.t);
        t_hi = std::max(t_hi, s.t);
      }
      const double width = (t_hi - t_lo) / static_cast<double>(bins);
      std::vector<std::array<std::uint64_t, 3>> counts(
          bins, std::array<std::uint64_t, 3>{});
      for (const SlotSampleRow& s : slots) {
        std::size_t b = width <= 0.0 ? 0
                                     : static_cast<std::size_t>(
                                           (s.t - t_lo) / width);
        if (b >= bins) b = bins - 1;
        ++counts[b][static_cast<std::size_t>(s.kind)];
      }
      std::printf("\nslot utilization (%zu bins over t=[%.0f, %.0f])\n",
                  bins, t_lo, t_hi);
      std::printf("%18s %8s %8s %8s\n", "bin", "push", "pull", "idle");
      for (std::size_t b = 0; b < bins; ++b) {
        const double total = static_cast<double>(
            counts[b][0] + counts[b][1] + counts[b][2]);
        if (total == 0.0) continue;
        std::printf("[%7.0f,%7.0f) %7.1f%% %7.1f%% %7.1f%%\n",
                    t_lo + width * static_cast<double>(b),
                    t_lo + width * static_cast<double>(b + 1),
                    100.0 * static_cast<double>(counts[b][0]) / total,
                    100.0 * static_cast<double>(counts[b][1]) / total,
                    100.0 * static_cast<double>(counts[b][2]) / total);
      }
    }
  }

  if (breakdown.pull_served + breakdown.snooped + breakdown.push_served ==
      0) {
    std::fprintf(stderr,
                 "no request->delivery span could be reconstructed\n");
    return 1;
  }
  return 0;
}
