// bdisk_top — live monitor and stream checker for bdisk-frame-v1 JSONL.
//
// Tails the telemetry-bus frame stream a running simulation publishes with
// `bdisk_sim --frames` and renders a rolling dashboard: one row per
// telemetry window (slot mix, queue depth, drop/shed rates, response
// percentiles, access throughput) with lifecycle frames (run start/end,
// degraded-mode edges, flight-recorder fires) interleaved as annotation
// lines. Examples:
//
//   bdisk_top unix:/tmp/bdisk.sock          # live: start this FIRST, then
//                                           #   bdisk_sim --frames unix:/tmp/bdisk.sock
//   bdisk_sim --frames - | bdisk_top -      # live over a pipe
//   bdisk_top frames.jsonl                  # replay a recorded stream
//   bdisk_top frames.jsonl --check --snapshot metrics.json
//
// --check turns the monitor into a stream validator (CI gate): sequence
// numbers must be strictly increasing and the gaps must account exactly
// for the drops the run_end frame reports, and the delta-credit invariant
// must hold — base + sum of every received frame's deltas == run_end
// totals, no matter which frames a slow receiver missed. With --snapshot
// the totals are additionally reconciled against the run's final
// bdisk-metrics-v1 document (same counter names; no mapping table).

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/frame_sink.h"
#include "obs/json.h"

namespace {

using bdisk::obs::JsonValue;
using bdisk::obs::ParseJson;

void PrintUsage() {
  std::printf(
      "usage: bdisk_top SOURCE [options]\n"
      "  SOURCE             \"unix:PATH\" binds a datagram socket and waits\n"
      "                     for a publisher (start bdisk_top first, then\n"
      "                     bdisk_sim --frames unix:PATH); \"-\" reads\n"
      "                     stdin; anything else replays a JSONL file\n"
      "  --check            validate the stream instead of just rendering:\n"
      "                     seq gaps must equal reported drops and\n"
      "                     base + sum(deltas) must equal run_end totals\n"
      "                     exactly; exit 1 on any violation\n"
      "  --snapshot FILE    with --check: reconcile run_end totals against\n"
      "                     a bdisk-metrics-v1 snapshot written by the same\n"
      "                     run (bdisk_sim --metrics-json FILE)\n"
      "  --timeout SECS     socket/stdin idle limit while waiting for\n"
      "                     frames (default 30; socket mode only)\n"
      "  --quiet            suppress the dashboard (useful with --check)\n"
      "  --help             this message\n"
      "exit status: 0 clean (with --check: all invariants hold), 1 check\n"
      "failure or stream ended without run_end, 2 usage/IO error.\n");
}

// One name->value counter map parsed out of a frame's "base", "deltas",
// or "totals" object. Values are exact: the writer only emits integers.
using CounterMap = std::map<std::string, long long>;

bool ReadCounters(const JsonValue& frame, const char* key, CounterMap* out) {
  const JsonValue* object = frame.Find(key);
  if (object == nullptr || object->kind != JsonValue::Kind::kObject) {
    return false;
  }
  for (const auto& [name, value] : object->object) {
    (*out)[name] = static_cast<long long>(value.number);
  }
  return true;
}

double Num(const JsonValue& frame, const char* key, double fallback = 0.0) {
  const JsonValue* value = frame.Find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kNumber
             ? value->number
             : fallback;
}

std::string Str(const JsonValue& frame, const char* key) {
  const JsonValue* value = frame.Find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kString
             ? value->string
             : std::string();
}

// ---------------------------------------------------------------------------
// Frame sources: datagram socket, stdin, or file. One Next() call yields one
// frame line (datagram = one frame; streams split on '\n').

class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// Returns false at end of stream (or idle timeout). `line` is one frame.
  virtual bool Next(std::string* line) = 0;
};

class StreamSource : public FrameSource {
 public:
  explicit StreamSource(std::istream* in) : in_(in) {}
  bool Next(std::string* line) override {
    while (std::getline(*in_, *line)) {
      if (!line->empty()) return true;
    }
    return false;
  }

 private:
  std::istream* in_;
};

class SocketSource : public FrameSource {
 public:
  static std::unique_ptr<SocketSource> Bind(const std::string& path,
                                            double timeout_seconds,
                                            std::string* error) {
    sockaddr_un addr{};
    const std::string invalid = bdisk::obs::ValidateUnixSocketPath(path);
    if (!invalid.empty()) {
      *error = invalid;
      return nullptr;
    }
    const int fd = ::socket(AF_UNIX, SOCK_DGRAM, 0);
    if (fd < 0) {
      *error = std::string("socket(): ") + std::strerror(errno);
      return nullptr;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // A stale socket file would make bind fail.
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *error = "bind(" + path + "): " + std::strerror(errno);
      ::close(fd);
      return nullptr;
    }
    auto source = std::unique_ptr<SocketSource>(new SocketSource);
    source->fd_ = fd;
    source->path_ = path;
    source->timeout_ms_ = static_cast<int>(timeout_seconds * 1000.0);
    return source;
  }

  ~SocketSource() override {
    if (fd_ >= 0) ::close(fd_);
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  bool Next(std::string* line) override {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, timeout_ms_);
      if (ready == 0) return false;  // Idle timeout: publisher is gone.
      if (ready < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      char buffer[65536];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return false;
      line->assign(buffer, static_cast<std::size_t>(n));
      while (!line->empty() && line->back() == '\n') line->pop_back();
      if (!line->empty()) return true;
    }
  }

 private:
  SocketSource() = default;
  int fd_ = -1;
  std::string path_;
  int timeout_ms_ = 30000;
};

// ---------------------------------------------------------------------------
// Dashboard rendering.

constexpr int kHeaderEvery = 20;

void PrintHeader() {
  std::printf(
      "%12s %6s %6s %6s %6s %6s %6s %8s %8s %8s\n"
      "------------ ------ ------ ------ ------ ------ ------ -------- "
      "-------- --------\n",
      "sim", "push%", "pull%", "idle%", "qdep", "drop%", "shed%", "p50",
      "p99", "acc/win");
}

void PrintWindowRow(const JsonValue& frame) {
  const JsonValue* window = frame.Find("window");
  const JsonValue* gauges = frame.Find("gauges");
  if (window == nullptr) return;
  const double slots = Num(*window, "slots_push") +
                       Num(*window, "slots_pull") +
                       Num(*window, "slots_idle");
  const double denom = slots > 0.0 ? slots : 1.0;
  long long accesses = 0;
  const JsonValue* deltas = frame.Find("deltas");
  if (deltas != nullptr) {
    accesses = static_cast<long long>(Num(*deltas, "client.mc.accesses"));
  }
  const bool degraded =
      gauges != nullptr && Num(*gauges, "degraded") != 0.0;
  std::printf("%12.0f %6.1f %6.1f %6.1f %6.0f %6.2f %6.2f %8.1f %8.1f %8lld%s\n",
              Num(*window, "end"),
              100.0 * Num(*window, "slots_push") / denom,
              100.0 * Num(*window, "slots_pull") / denom,
              100.0 * Num(*window, "slots_idle") / denom,
              gauges != nullptr ? Num(*gauges, "queue_depth") : 0.0,
              100.0 * Num(*window, "drop_rate"),
              100.0 * Num(*window, "shed_rate"),
              Num(*window, "response_p50"), Num(*window, "response_p99"),
              accesses, degraded ? "  [degraded]" : "");
}

void PrintLifecycle(const std::string& kind, const JsonValue& frame) {
  if (kind == "run_start") {
    std::string provenance;
    const JsonValue* object = frame.Find("provenance");
    if (object != nullptr && object->kind == JsonValue::Kind::kObject) {
      for (const auto& [key, value] : object->object) {
        if (!provenance.empty()) provenance += " ";
        provenance += key + "=" +
                      (value.kind == JsonValue::Kind::kString
                           ? value.string
                           : std::to_string(value.number));
      }
    }
    std::printf("== run_start  %s\n", provenance.c_str());
  } else if (kind == "degraded_enter" || kind == "degraded_exit") {
    std::printf("== %s  sim=%.0f queue_depth=%.0f\n", kind.c_str(),
                Num(frame, "sim"), Num(frame, "queue_depth"));
  } else if (kind == "flight_fire") {
    std::printf("== flight_fire  sim=%.0f trigger=%s value=%g threshold=%g "
                "fire_count=%.0f\n",
                Num(frame, "sim"), Str(frame, "trigger").c_str(),
                Num(frame, "value"), Num(frame, "threshold"),
                Num(frame, "fire_count"));
  } else if (kind == "run_end") {
    std::printf("== run_end  sim=%.0f window_frames=%.0f frames_emitted=%.0f "
                "frames_dropped=%.0f\n",
                Num(frame, "sim"), Num(frame, "window_frames"),
                Num(frame, "frames_emitted"), Num(frame, "frames_dropped"));
  }
}

// ---------------------------------------------------------------------------
// --check state: the delta-credit invariant over whatever subset of frames
// actually arrived.

struct CheckState {
  long long frames_received = 0;
  long long run_start_frames = 0;
  long long run_end_frames = 0;
  long long window_frames_received = 0;
  long long last_seq = -1;
  bool seq_monotone = true;
  CounterMap base_from_start;
  CounterMap delta_sums;
  // run_end payload.
  bool saw_run_end = false;
  long long end_seq = -1;
  CounterMap base_from_end;
  CounterMap totals;
  long long reported_emitted = 0;
  long long reported_dropped = 0;
  long long reported_window_frames = 0;
};

void Accumulate(const CounterMap& add, CounterMap* into) {
  for (const auto& [name, value] : add) (*into)[name] += value;
}

std::vector<std::string> Violations(const CheckState& s,
                                    const CounterMap* snapshot) {
  std::vector<std::string> out;
  const auto fail = [&out](const std::string& message) {
    out.push_back(message);
  };
  if (!s.seq_monotone) fail("sequence numbers are not strictly increasing");
  if (s.run_start_frames > 1) fail("more than one run_start frame");
  if (!s.saw_run_end) {
    fail("stream ended without a run_end frame");
    return out;  // Everything below needs the run_end payload.
  }
  if (s.run_end_frames > 1) fail("more than one run_end frame");
  if (s.end_seq != s.reported_emitted - 1) {
    fail("run_end seq " + std::to_string(s.end_seq) +
         " != frames_emitted-1 (" + std::to_string(s.reported_emitted - 1) +
         ")");
  }
  if (s.last_seq != s.end_seq) fail("frames after run_end");
  const long long missing = s.reported_emitted - s.frames_received;
  if (missing != s.reported_dropped) {
    fail("seq gaps (" + std::to_string(missing) +
         " missing frames) != reported frames_dropped (" +
         std::to_string(s.reported_dropped) + ")");
  }
  if (s.window_frames_received > s.reported_window_frames) {
    fail("received more window frames than run_end reports");
  }
  if (!s.base_from_start.empty() && s.base_from_start != s.base_from_end) {
    fail("run_start base != run_end base");
  }
  // The invariant the bus's credit-on-accept discipline guarantees: the
  // frames that made it through carry, between them, every count.
  for (const auto& [name, total] : s.totals) {
    const auto base_it = s.base_from_end.find(name);
    const long long base =
        base_it != s.base_from_end.end() ? base_it->second : 0;
    const auto delta_it = s.delta_sums.find(name);
    const long long summed =
        delta_it != s.delta_sums.end() ? delta_it->second : 0;
    if (base + summed != total) {
      fail("delta reconciliation: " + name + ": base " +
           std::to_string(base) + " + sum(deltas) " + std::to_string(summed) +
           " != total " + std::to_string(total));
    }
  }
  for (const auto& [name, summed] : s.delta_sums) {
    if (s.totals.find(name) == s.totals.end()) {
      fail("counter " + name + " appears in deltas but not in totals");
    }
  }
  if (snapshot != nullptr) {
    for (const auto& [name, total] : s.totals) {
      const auto it = snapshot->find(name);
      if (it == snapshot->end()) {
        fail("snapshot is missing counter " + name);
      } else if (it->second != total) {
        fail("snapshot mismatch: " + name + ": stream total " +
             std::to_string(total) + " != snapshot " +
             std::to_string(it->second));
      }
    }
  }
  return out;
}

bool LoadSnapshotCounters(const std::string& path, CounterMap* out,
                          std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot read " + path;
    return false;
  }
  std::stringstream body;
  body << file.rdbuf();
  JsonValue document;
  if (!ParseJson(body.str(), &document, error)) return false;
  const JsonValue* schema = document.Find("schema");
  if (schema == nullptr || schema->string != "bdisk-metrics-v1") {
    *error = path + " is not a bdisk-metrics-v1 snapshot";
    return false;
  }
  const JsonValue* counters = document.Find("counters");
  if (counters == nullptr || counters->kind != JsonValue::Kind::kObject) {
    *error = path + " has no counters object";
    return false;
  }
  for (const auto& [name, value] : counters->object) {
    (*out)[name] = static_cast<long long>(value.number);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source_arg;
  std::string snapshot_path;
  bool check = false;
  bool quiet = false;
  double timeout_seconds = 30.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--snapshot") {
      snapshot_path = next_value("--snapshot");
    } else if (arg == "--timeout") {
      char* end = nullptr;
      const char* value = next_value("--timeout");
      timeout_seconds = std::strtod(value, &end);
      if (end == value || timeout_seconds <= 0.0) {
        std::fprintf(stderr, "--timeout expects a positive number\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (source_arg.empty()) {
      source_arg = arg;
    } else {
      std::fprintf(stderr, "more than one SOURCE given\n");
      return 2;
    }
  }
  if (source_arg.empty()) {
    PrintUsage();
    return 2;
  }
  if (!snapshot_path.empty() && !check) {
    std::fprintf(stderr, "--snapshot only makes sense with --check\n");
    return 2;
  }

  CounterMap snapshot_counters;
  if (!snapshot_path.empty()) {
    std::string error;
    if (!LoadSnapshotCounters(snapshot_path, &snapshot_counters, &error)) {
      std::fprintf(stderr, "--snapshot: %s\n", error.c_str());
      return 2;
    }
  }

  std::ifstream file_stream;
  std::unique_ptr<FrameSource> source;
  if (source_arg.rfind("unix:", 0) == 0) {
    std::string error;
    source = SocketSource::Bind(source_arg.substr(5), timeout_seconds, &error);
    if (source == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
  } else if (source_arg == "-") {
    source = std::make_unique<StreamSource>(&std::cin);
  } else {
    file_stream.open(source_arg);
    if (!file_stream) {
      std::fprintf(stderr, "cannot read %s\n", source_arg.c_str());
      return 2;
    }
    source = std::make_unique<StreamSource>(&file_stream);
  }

  CheckState state;
  int rows_since_header = kHeaderEvery;  // Print the header before row one.
  std::string line;
  bool parse_failure = false;
  while (source->Next(&line)) {
    JsonValue frame;
    std::string error;
    if (!ParseJson(line, &frame, &error)) {
      std::fprintf(stderr, "unparseable frame: %s\n", error.c_str());
      parse_failure = true;
      continue;
    }
    if (Str(frame, "schema") != "bdisk-frame-v1") {
      std::fprintf(stderr, "not a bdisk-frame-v1 frame, skipping\n");
      parse_failure = true;
      continue;
    }
    const std::string kind = Str(frame, "kind");
    const long long seq = static_cast<long long>(Num(frame, "seq", -1.0));

    ++state.frames_received;
    if (seq <= state.last_seq) state.seq_monotone = false;
    state.last_seq = seq;
    CounterMap deltas;
    if (ReadCounters(frame, "deltas", &deltas)) {
      Accumulate(deltas, &state.delta_sums);
    }
    if (kind == "run_start") {
      ++state.run_start_frames;
      ReadCounters(frame, "base", &state.base_from_start);
    } else if (kind == "window") {
      ++state.window_frames_received;
    } else if (kind == "run_end") {
      ++state.run_end_frames;
      state.saw_run_end = true;
      state.end_seq = seq;
      ReadCounters(frame, "base", &state.base_from_end);
      ReadCounters(frame, "totals", &state.totals);
      state.reported_emitted =
          static_cast<long long>(Num(frame, "frames_emitted"));
      state.reported_dropped =
          static_cast<long long>(Num(frame, "frames_dropped"));
      state.reported_window_frames =
          static_cast<long long>(Num(frame, "window_frames"));
    }

    if (!quiet) {
      if (kind == "window") {
        if (rows_since_header >= kHeaderEvery) {
          PrintHeader();
          rows_since_header = 0;
        }
        PrintWindowRow(frame);
        ++rows_since_header;
        std::fflush(stdout);
      } else {
        PrintLifecycle(kind, frame);
        std::fflush(stdout);
      }
    }
    if (kind == "run_end") break;  // A stream describes exactly one run.
  }

  if (!check) {
    if (!state.saw_run_end && state.frames_received > 0) {
      std::fprintf(stderr, "stream ended without run_end\n");
      return 1;
    }
    return state.frames_received > 0 && !parse_failure ? 0 : 1;
  }

  std::vector<std::string> violations = Violations(
      state, snapshot_path.empty() ? nullptr : &snapshot_counters);
  if (parse_failure) violations.push_back("stream contained bad frames");
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", violation.c_str());
  }
  if (violations.empty()) {
    std::fprintf(stderr,
                 "check ok: %lld frames (%lld windows), %lld dropped, "
                 "deltas reconcile%s\n",
                 state.frames_received, state.window_frames_received,
                 state.reported_dropped,
                 snapshot_path.empty() ? "" : " and match the snapshot");
  }
  return violations.empty() ? 0 : 1;
}
