// bdisk_load — bmeter-style load driver for a live bdisk_serve socket.
//
// Connects as one wire client, then runs closed-loop pull rounds: draw a
// page, send PULL, wait for any SLOT carrying that page (our pull's
// response, or a snooped push/pull — the broadcast medium answers either
// way), measure the wall round-trip, think, repeat. Retries ride the same
// bounded-exponential-backoff engine as the measured client's robust pull
// path. Examples:
//
//   bdisk_load --socket /tmp/bd.sock --rounds 200
//   bdisk_load --socket bd.sock --rounds 100 --restart-after 50 --reconcile
//   BDISK_BENCH_ALLOW_DEBUG=1 bdisk_load --socket bd.sock --report load.json
//
// --restart-after K crashes the connection (socket dropped, no BYE — the
// transport-level peer-kill fault) after K completed rounds and
// reconnects under backoff on a fresh epoch path.
//
// --reconcile ends the run with the BYE -> STATS handshake and demands
// EXACT counter agreement with the server (AF_UNIX datagram FIFO per
// sender/receiver pair makes the cut consistent):
//   - server pulls_rx        == pulls the client's kernel accepted,
//   - server slots_tx_epoch  == slots received since the last WELCOME.
// Exits 1 on any mismatch — this is the drop-accounting gate the CI
// live-serve smoke runs after a mid-run kill/restart.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/provenance.h"
#include "fault/backoff.h"
#include "sim/rng.h"
#include "transport/datagram_client.h"
#include "transport/wire.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: bdisk_load --socket PATH [options]\n"
      "  --socket PATH      bdisk_serve socket to drive (required)\n"
      "  --client-id ID     wire identity (default \"load\")\n"
      "  --dir DIR          directory for this client's reply sockets\n"
      "                     (default \".\")\n"
      "  --rounds N         pull round-trips to complete (default 100)\n"
      "  --think-ms N       pause between rounds (default 0)\n"
      "  --timeout-ms N     base per-pull timeout before a backoff retry\n"
      "                     (default 200)\n"
      "  --retries N        retries per round after the first pull\n"
      "                     (default 5)\n"
      "  --restart-after K  crash + reconnect after K completed rounds\n"
      "  --reconcile        BYE -> STATS exact accounting check (exit 1 on\n"
      "                     mismatch)\n"
      "  --seed N           page-draw / jitter RNG seed (default 42)\n"
      "  --report FILE      write a bdisk-load-v1 JSON report (requires an\n"
      "                     optimized build, or BDISK_BENCH_ALLOW_DEBUG=1)\n"
      "  --help             this message\n");
}

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdisk;

  std::string socket_path;
  std::string client_id = "load";
  std::string socket_dir = ".";
  std::string report_path;
  std::uint64_t rounds = 100;
  std::uint64_t think_ms = 0;
  std::uint64_t timeout_ms = 200;
  std::uint32_t retries = 5;
  std::uint64_t restart_after = 0;
  bool reconcile = false;
  std::uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next_value("--socket");
    } else if (arg == "--client-id") {
      client_id = next_value("--client-id");
    } else if (arg == "--dir") {
      socket_dir = next_value("--dir");
    } else if (arg == "--rounds") {
      rounds = std::strtoull(next_value("--rounds"), nullptr, 10);
    } else if (arg == "--think-ms") {
      think_ms = std::strtoull(next_value("--think-ms"), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::strtoull(next_value("--timeout-ms"), nullptr, 10);
    } else if (arg == "--retries") {
      retries = static_cast<std::uint32_t>(
          std::strtoul(next_value("--retries"), nullptr, 10));
    } else if (arg == "--restart-after") {
      restart_after =
          std::strtoull(next_value("--restart-after"), nullptr, 10);
    } else if (arg == "--reconcile") {
      reconcile = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (arg == "--report") {
      report_path = next_value("--report");
    } else if (arg == "--help") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    PrintUsage();
    return 2;
  }
  if (timeout_ms == 0) {
    std::fprintf(stderr, "--timeout-ms must be positive\n");
    return 2;
  }
  if (!report_path.empty()) {
    // Reported numbers are throughput claims; gate them like the benches.
    core::RequireOptimizedBuild("bdisk_load");
  }

  sim::Rng rng(seed);
  transport::DatagramClientOptions options;
  options.server_path = socket_path;
  options.client_id = client_id;
  options.socket_dir = socket_dir;
  // Wall-second pacing: base = the pull timeout, capped at 16x.
  options.backoff.base = static_cast<double>(timeout_ms) * 1e-3;
  options.backoff.cap = options.backoff.base * 16.0;

  transport::DatagramClientChannel channel;
  {
    std::string error;
    if (!channel.Connect(options, &rng, &error)) {
      std::fprintf(stderr, "bdisk_load: %s\n", error.c_str());
      return 2;
    }
  }
  const std::uint32_t db_size = channel.welcome().db_size;
  if (db_size == 0) {
    std::fprintf(stderr, "bdisk_load: server advertised an empty database\n");
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto wall_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t restarts = 0;
  std::vector<double> rtts_ms;
  rtts_ms.reserve(rounds);
  std::vector<transport::wire::Message> messages;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (restart_after > 0 && completed == restart_after && restarts == 0) {
      // The peer-kill/restart fault, from the client's side: the process
      // "dies" (socket gone, no BYE) and a fresh one reconnects under
      // backoff on a new epoch path. Counters survive in this harness the
      // way a restarted client's persistent tally would.
      channel.Crash();
      ++restarts;
      std::string error;
      if (!channel.Connect(options, &rng, &error)) {
        std::fprintf(stderr, "bdisk_load: reconnect failed: %s\n",
                     error.c_str());
        return 2;
      }
    }
    const broadcast::PageId page =
        static_cast<broadcast::PageId>(rng.NextBounded(db_size));
    const double t0 = wall_s();
    bool answered = false;
    for (std::uint32_t attempt = 0; attempt <= retries && !answered;
         ++attempt) {
      if (!channel.SendPull(page)) channel.SendPing();  // Keep liveness.
      const double deadline =
          wall_s() +
          fault::JitteredBackoffDelay(options.backoff, attempt, &rng);
      while (!answered && channel.Connected()) {
        const double remaining = deadline - wall_s();
        if (remaining <= 0.0) break;
        int step_ms = static_cast<int>(remaining * 1000.0);
        if (step_ms < 1) step_ms = 1;
        if (step_ms > 20) step_ms = 20;
        messages.clear();
        channel.PollMessages(step_ms, &messages);
        for (const transport::wire::Message& msg : messages) {
          if (msg.type == transport::wire::MsgType::kSlot &&
              msg.page == page) {
            answered = true;
          }
        }
      }
      if (!channel.Connected()) {
        std::fprintf(stderr,
                     "bdisk_load: server closed the channel mid-run\n");
        return 2;
      }
    }
    if (answered) {
      ++completed;
      rtts_ms.push_back((wall_s() - t0) * 1000.0);
    } else {
      ++failed;
    }
    if (think_ms > 0) {
      messages.clear();
      channel.PollMessages(static_cast<int>(think_ms), nullptr);
    }
  }

  const double elapsed = wall_s();
  const transport::ClientCounters& c = channel.counters();

  bool reconcile_failed = false;
  if (reconcile) {
    transport::wire::PeerStats stats;
    if (!channel.Goodbye(&stats, /*timeout_ms=*/2000)) {
      std::fprintf(stderr, "reconcile: no STATS reply to BYE\n");
      reconcile_failed = true;
    } else {
      if (stats.pulls_rx != c.pulls_sent) {
        std::fprintf(stderr,
                     "reconcile: MISMATCH pulls: server rx=%llu != client "
                     "sent=%llu\n",
                     static_cast<unsigned long long>(stats.pulls_rx),
                     static_cast<unsigned long long>(c.pulls_sent));
        reconcile_failed = true;
      }
      if (stats.slots_tx_epoch != c.slots_rx_epoch) {
        std::fprintf(
            stderr,
            "reconcile: MISMATCH slots: server tx_epoch=%llu != client "
            "rx_epoch=%llu\n",
            static_cast<unsigned long long>(stats.slots_tx_epoch),
            static_cast<unsigned long long>(c.slots_rx_epoch));
        reconcile_failed = true;
      }
      if (!reconcile_failed) {
        std::fprintf(stderr,
                     "reconcile: OK (pulls=%llu slots_epoch=%llu "
                     "drops: backpressure=%llu dead_peer=%llu fault=%llu "
                     "pull_fault=%llu)\n",
                     static_cast<unsigned long long>(stats.pulls_rx),
                     static_cast<unsigned long long>(stats.slots_tx_epoch),
                     static_cast<unsigned long long>(stats.drop_backpressure),
                     static_cast<unsigned long long>(stats.drop_dead_peer),
                     static_cast<unsigned long long>(stats.drop_fault),
                     static_cast<unsigned long long>(
                         stats.pulls_fault_dropped));
      }
    }
  }

  std::sort(rtts_ms.begin(), rtts_ms.end());
  const double rt_per_s =
      elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
  const double slots_per_s =
      elapsed > 0.0 ? static_cast<double>(c.slots_rx_total) / elapsed : 0.0;
  double rtt_sum = 0.0;
  for (const double r : rtts_ms) rtt_sum += r;

  std::printf(
      "bdisk_load: %llu/%llu rounds in %.3fs (%.1f pull round-trips/s, "
      "%.1f slots/s heard)\n"
      "  pulls sent=%llu send_failed=%llu  slots rx=%llu  reconnects=%llu "
      "restarts=%llu\n"
      "  rtt ms: mean=%.2f p50=%.2f p90=%.2f p99=%.2f\n",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rounds), elapsed, rt_per_s,
      slots_per_s, static_cast<unsigned long long>(c.pulls_sent),
      static_cast<unsigned long long>(c.pulls_send_failed),
      static_cast<unsigned long long>(c.slots_rx_total),
      static_cast<unsigned long long>(c.reconnects),
      static_cast<unsigned long long>(restarts),
      rtts_ms.empty() ? 0.0 : rtt_sum / static_cast<double>(rtts_ms.size()),
      Quantile(rtts_ms, 0.50), Quantile(rtts_ms, 0.90),
      Quantile(rtts_ms, 0.99));

  if (!report_path.empty()) {
    std::FILE* out = std::fopen(report_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    std::fprintf(
        out,
        "{\"schema\":\"bdisk-load-v1\",\"build_type\":\"%s\","
        "\"git_rev\":\"%s\",\"optimized\":%s,\"socket\":\"%s\","
        "\"rounds\":%llu,\"completed\":%llu,\"failed\":%llu,"
        "\"elapsed_s\":%.6f,\"pull_rt_per_s\":%.3f,\"slots_per_s\":%.3f,"
        "\"pulls_sent\":%llu,\"slots_rx\":%llu,\"reconnects\":%llu,"
        "\"rtt_ms\":{\"mean\":%.4f,\"p50\":%.4f,\"p90\":%.4f,"
        "\"p99\":%.4f}}\n",
        core::BuildType(), core::GitRev(),
        core::OptimizedBuild() ? "true" : "false", socket_path.c_str(),
        static_cast<unsigned long long>(rounds),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(failed),
        elapsed, rt_per_s, slots_per_s,
        static_cast<unsigned long long>(c.pulls_sent),
        static_cast<unsigned long long>(c.slots_rx_total),
        static_cast<unsigned long long>(c.reconnects),
        rtts_ms.empty() ? 0.0
                        : rtt_sum / static_cast<double>(rtts_ms.size()),
        Quantile(rtts_ms, 0.50), Quantile(rtts_ms, 0.90),
        Quantile(rtts_ms, 0.99));
    std::fclose(out);
  }

  if (reconcile_failed) return 1;
  if (completed == 0) {
    std::fprintf(stderr, "bdisk_load: no round completed\n");
    return 1;
  }
  return 0;
}
