// bdisk_compare — diff two bdisk-metrics-v1 JSON snapshots.
//
// Flattens both registries (counters, gauges, stats, histograms, and
// time-series lengths) into name -> value maps and compares them with
// percent deltas. Intended as a CI regression gate: identical snapshots
// exit 0, any metric moving beyond --tolerance (or appearing/disappearing)
// exits 1, usage or parse problems exit 2.
//
//   bdisk_compare baseline.json fresh.json
//   bdisk_compare baseline.json fresh.json --tolerance 2.5 --all
//
// Wall-clock metrics — the whole `prof.*` family and `kernel.wall_seconds`
// (obs::kNondeterministicMetricSubstrings) — are ignored by default: they
// measure the host, not the simulation. --ignore adds further substrings;
// --include-nondeterministic compares them anyway.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/phase_profiler.h"

namespace {

using bdisk::obs::JsonValue;

void PrintUsage() {
  std::printf(
      "usage: bdisk_compare BASELINE.json CURRENT.json [options]\n"
      "  --tolerance PCT  allowed per-metric delta in percent (default 0)\n"
      "  --ignore SUBSTR  skip metrics whose name contains SUBSTR\n"
      "                   (repeatable)\n"
      "  --include-nondeterministic\n"
      "                   compare wall-clock metrics too (prof.*,\n"
      "                   kernel.wall_seconds); skipped by default because\n"
      "                   they measure the host, not the simulation\n"
      "  --all            print unchanged metrics too\n"
      "  --json PATH      also write a machine-readable diff\n"
      "                   (bdisk-compare-v1: per-metric baseline/current/\n"
      "                   delta/verdict plus a summary) to PATH; \"-\"\n"
      "                   writes it to stdout and suppresses the table\n"
      "exit: 0 within tolerance, 1 regression, 2 usage/parse error\n");
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

// Flattened scalar view of one snapshot: "counters.server.slots_total",
// "histograms.client.mc.response.p99", "time_series.window.drop_rate.len".
using MetricMap = std::map<std::string, double>;

void FlattenScalarSection(const JsonValue& root, const char* section,
                          MetricMap* out) {
  const JsonValue* sec = root.Find(section);
  if (sec == nullptr || sec->kind != JsonValue::Kind::kObject) return;
  for (const auto& [name, value] : sec->object) {
    if (value.kind == JsonValue::Kind::kNumber) {
      (*out)[std::string(section) + "." + name] = value.number;
    } else if (value.kind == JsonValue::Kind::kObject) {
      // stats/histograms: an object of scalar fields (plus nested arrays
      // like histogram buckets, which the scalar count/percentile fields
      // already summarize — skip them).
      for (const auto& [field, leaf] : value.object) {
        if (leaf.kind == JsonValue::Kind::kNumber) {
          (*out)[std::string(section) + "." + name + "." + field] =
              leaf.number;
        }
      }
    }
  }
}

void FlattenTimeSeries(const JsonValue& root, MetricMap* out) {
  const JsonValue* sec = root.Find("time_series");
  if (sec == nullptr || sec->kind != JsonValue::Kind::kObject) return;
  // Whole series are too volatile to diff pointwise (sample counts shift
  // with run length); their lengths catch wiring regressions cheaply.
  for (const auto& [name, value] : sec->object) {
    if (value.kind == JsonValue::Kind::kArray) {
      (*out)["time_series." + name + ".len"] =
          static_cast<double>(value.array.size());
    }
  }
}

bool LoadSnapshot(const std::string& path, MetricMap* out,
                  std::string* why) {
  std::string text;
  if (!ReadFile(path, &text)) {
    *why = "cannot open " + path;
    return false;
  }
  JsonValue root;
  std::string parse_error;
  if (!bdisk::obs::ParseJson(text, &root, &parse_error)) {
    *why = path + ": " + parse_error;
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != "bdisk-metrics-v1") {
    *why = path + ": not a bdisk-metrics-v1 snapshot";
    return false;
  }
  FlattenScalarSection(root, "counters", out);
  FlattenScalarSection(root, "gauges", out);
  FlattenScalarSection(root, "stats", out);
  FlattenScalarSection(root, "histograms", out);
  FlattenTimeSeries(root, out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double tolerance = 0.0;
  // One shared list of host-measuring metric families, defined next to the
  // profiler that produces most of them.
  std::vector<std::string> ignore(
      std::begin(bdisk::obs::kNondeterministicMetricSubstrings),
      std::end(bdisk::obs::kNondeterministicMetricSubstrings));
  bool print_all = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--tolerance") {
      const char* value = next_value("--tolerance");
      char* end = nullptr;
      tolerance = std::strtod(value, &end);
      if (end == value || *end != '\0' || tolerance < 0.0) {
        std::fprintf(stderr,
                     "--tolerance expects a non-negative percent\n");
        return 2;
      }
    } else if (arg == "--ignore") {
      ignore.emplace_back(next_value("--ignore"));
    } else if (arg == "--include-nondeterministic") {
      for (const char* needle :
           bdisk::obs::kNondeterministicMetricSubstrings) {
        ignore.erase(std::remove(ignore.begin(), ignore.end(), needle),
                     ignore.end());
      }
    } else if (arg == "--all") {
      print_all = true;
    } else if (arg == "--json") {
      json_path = next_value("--json");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    PrintUsage();
    return 2;
  }

  MetricMap baseline, current;
  std::string why;
  if (!LoadSnapshot(baseline_path, &baseline, &why) ||
      !LoadSnapshot(current_path, &current, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }

  const auto ignored = [&ignore](const std::string& name) {
    for (const std::string& needle : ignore) {
      if (name.find(needle) != std::string::npos) return true;
    }
    return false;
  };

  // One diff row per metric. Verdicts: "ok" (equal), "changed" (within
  // tolerance), "regressed" (beyond it), "missing_in_current",
  // "missing_in_baseline".
  struct Finding {
    std::string name;
    bool in_baseline = false;
    bool in_current = false;
    double baseline = 0.0;
    double current = 0.0;
    double delta_pct = 0.0;
    const char* verdict = "ok";
  };

  std::vector<Finding> findings;
  std::size_t compared = 0, changed = 0, regressions = 0;
  for (const auto& [name, old_v] : baseline) {
    if (ignored(name)) continue;
    Finding finding;
    finding.name = name;
    finding.in_baseline = true;
    finding.baseline = old_v;
    const auto it = current.find(name);
    if (it == current.end()) {
      finding.verdict = "missing_in_current";
      ++regressions;
      findings.push_back(std::move(finding));
      continue;
    }
    ++compared;
    finding.in_current = true;
    finding.current = it->second;
    if (finding.current != old_v) {
      finding.delta_pct =
          old_v != 0.0
              ? 100.0 * (finding.current - old_v) / std::fabs(old_v)
              : std::numeric_limits<double>::infinity();
    }
    const bool regressed = std::fabs(finding.delta_pct) > tolerance ||
                           !std::isfinite(finding.delta_pct);
    if (finding.delta_pct != 0.0) ++changed;
    if (regressed) ++regressions;
    finding.verdict =
        regressed ? "regressed" : (finding.delta_pct != 0.0 ? "changed" : "ok");
    findings.push_back(std::move(finding));
  }
  for (const auto& [name, new_v] : current) {
    if (ignored(name) || baseline.count(name) > 0) continue;
    Finding finding;
    finding.name = name;
    finding.in_current = true;
    finding.current = new_v;
    finding.verdict = "missing_in_baseline";
    ++regressions;
    findings.push_back(std::move(finding));
  }

  // --json - claims stdout for the document, so the table goes away
  // instead of corrupting it.
  if (json_path != "-") {
    std::printf("  %-48s %16s %16s %11s\n", "metric", "baseline", "current",
                "delta");
    for (const Finding& f : findings) {
      if (!f.in_current) {
        std::printf("! %-48s %16.6g %16s %11s\n", f.name.c_str(), f.baseline,
                    "(missing)", "");
      } else if (!f.in_baseline) {
        std::printf("! %-48s %16s %16.6g %11s\n", f.name.c_str(), "(missing)",
                    f.current, "");
      } else if (print_all || f.delta_pct != 0.0 ||
                 std::strcmp(f.verdict, "regressed") == 0) {
        std::printf("%c %-48s %16.6g %16.6g %+10.3f%%\n",
                    std::strcmp(f.verdict, "regressed") == 0
                        ? '!'
                        : (f.delta_pct != 0.0 ? '~' : ' '),
                    f.name.c_str(), f.baseline, f.current, f.delta_pct);
      }
    }
    std::printf("compared %zu metrics: %zu changed, %zu beyond %.3g%% "
                "tolerance\n",
                compared, changed, regressions, tolerance);
  }

  if (!json_path.empty()) {
    bdisk::obs::JsonWriter json;
    json.BeginObject();
    json.Key("schema");
    json.Value("bdisk-compare-v1");
    json.Key("baseline");
    json.Value(baseline_path);
    json.Key("current");
    json.Value(current_path);
    json.Key("metrics");
    json.BeginArray();
    for (const Finding& f : findings) {
      json.BeginObject();
      json.Key("name");
      json.Value(f.name);
      if (f.in_baseline) {
        json.Key("baseline");
        json.Value(f.baseline);
      }
      if (f.in_current) {
        json.Key("current");
        json.Value(f.current);
      }
      if (f.in_baseline && f.in_current) {
        json.Key("delta_pct");
        json.Value(f.delta_pct);  // Non-finite becomes null per JsonWriter.
      }
      json.Key("verdict");
      json.Value(f.verdict);
      json.EndObject();
    }
    json.EndArray();
    json.Key("summary");
    json.BeginObject();
    json.Key("tolerance_pct");
    json.Value(tolerance);
    json.Key("compared");
    json.Value(static_cast<std::uint64_t>(compared));
    json.Key("changed");
    json.Value(static_cast<std::uint64_t>(changed));
    json.Key("regressions");
    json.Value(static_cast<std::uint64_t>(regressions));
    json.Key("pass");
    json.Value(regressions == 0);
    json.EndObject();
    json.EndObject();
    const std::string document = json.str() + "\n";
    if (json_path == "-") {
      std::fwrite(document.data(), 1, document.size(), stdout);
    } else {
      std::ofstream file(json_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 2;
      }
      file << document;
    }
  }

  return regressions > 0 ? 1 : 0;
}
