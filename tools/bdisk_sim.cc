// bdisk_sim — command-line driver for the push/pull broadcast simulator.
//
// Run a single configuration or a ThinkTimeRatio sweep, from a config file
// and/or --set overrides, printing a table or CSV. Examples:
//
//   bdisk_sim                                   # Table 3 defaults, IPP
//   bdisk_sim --set mode=pull --set think_time_ratio=250
//   bdisk_sim --config my.conf --sweep 10,25,50,100,250 --csv
//   bdisk_sim --warmup --set mode=push
//   bdisk_sim --print-config                    # dump effective config
//   bdisk_sim --recommend                       # analytic advisor
//
// Config file syntax: `key = value` lines, `#` comments; keys documented
// in src/core/config_io.h.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/advisor.h"
#include "core/config_io.h"
#include "core/csv.h"
#include "core/experiment.h"
#include "core/system.h"
#include "core/table_printer.h"
#include "obs/flight_recorder.h"
#include "obs/frame_sink.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/progress.h"
#include "obs/span_assembler.h"
#include "obs/telemetry_bus.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: bdisk_sim [options]\n"
      "  --config FILE      load key=value config file\n"
      "  --set KEY=VALUE    override one config key (repeatable)\n"
      "  --sweep T1,T2,...  run a ThinkTimeRatio sweep\n"
      "  --threads N        worker threads for sweeps (0 = all cores)\n"
      "  --warmup           measure warm-up trajectory instead of steady "
      "state\n"
      "  --csv              emit CSV instead of a table\n"
      "  --quick            short measurement protocol\n"
      "  --metrics-json F   write a metrics-registry snapshot (JSON) to F\n"
      "                     (\"-\" writes to stdout)\n"
      "  --trace F          write a structured trace to F (JSONL, or CSV\n"
      "                     when F ends in .csv)\n"
      "  --profile F        write a wall-clock phase profile (bdisk-prof-v1\n"
      "                     JSON) to F; see tools/bdisk_prof\n"
      "  --profile-folded F write folded stacks to F (flamegraph.pl input)\n"
      "  --chrome-trace F   write Chrome trace-event JSON to F (\"-\" for\n"
      "                     stdout): wall-clock phase slices plus sim-time\n"
      "                     request spans\n"
      "  --windows W        windowed telemetry with window width W (the\n"
      "                     \"window.*\" series in --metrics-json output)\n"
      "  --flight-recorder SPEC\n"
      "                     arm the anomaly flight recorder; SPEC is a\n"
      "                     comma list of drop_rate>X, p99>X, queue_depth>X\n"
      "                     (config-file keys: obs_window, flight_recorder)\n"
      "  --flight-recorder-max-dumps N\n"
      "                     dump budget: re-arm after each dump until N\n"
      "                     dumps are written (default 1 = one-shot)\n"
      "  --frames DEST      stream live bdisk-frame-v1 JSONL frames to DEST\n"
      "                     (\"-\" stdout, \"unix:PATH\" datagram socket —\n"
      "                     see tools/bdisk_top — else a file); implies\n"
      "                     windowed telemetry\n"
      "  --progress         periodic heartbeat on stderr (sim-time,\n"
      "                     events/s, done%%, ETA)\n"
      "  --print-config     print the effective configuration and exit\n"
      "  --recommend        run the analytic advisor for this config\n"
      "  --help             this message\n"
      "observability flags run a single point (no multi-point --sweep).\n");
}

bool WriteFileOrComplain(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << body;
  return true;
}

bool EndsWith(const std::string& text, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

bool ParseDoubleList(const std::string& text, std::vector<double>* out) {
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (end == item.c_str()) return false;
    out->push_back(parsed);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdisk;

  core::SystemConfig config;
  std::vector<double> sweep;
  unsigned num_threads = 0;
  bool warmup = false;
  bool csv = false;
  bool quick = false;
  bool print_config = false;
  bool recommend = false;
  std::string metrics_json_path;
  std::string trace_path;
  std::string profile_path;
  std::string folded_path;
  std::string chrome_trace_path;
  bool progress = false;
  bool windows = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--config") {
      const char* path = next_value("--config");
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      const std::string error = core::ParseConfigText(buffer.str(), &config);
      if (!error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return 2;
      }
    } else if (arg == "--set") {
      const std::string assignment = next_value("--set");
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set expects KEY=VALUE\n");
        return 2;
      }
      const std::string error = core::ApplyConfigOption(
          assignment.substr(0, eq), assignment.substr(eq + 1), &config);
      if (!error.empty()) {
        std::fprintf(stderr, "--set %s: %s\n", assignment.c_str(),
                     error.c_str());
        return 2;
      }
    } else if (arg == "--sweep") {
      if (!ParseDoubleList(next_value("--sweep"), &sweep)) {
        std::fprintf(stderr, "--sweep expects a comma-separated list\n");
        return 2;
      }
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--threads expects a non-negative integer\n");
        return 2;
      }
      num_threads = static_cast<unsigned>(parsed);
    } else if (arg == "--warmup") {
      warmup = true;
    } else if (arg == "--metrics-json") {
      metrics_json_path = next_value("--metrics-json");
    } else if (arg == "--trace") {
      trace_path = next_value("--trace");
    } else if (arg == "--profile") {
      profile_path = next_value("--profile");
    } else if (arg == "--profile-folded") {
      folded_path = next_value("--profile-folded");
    } else if (arg == "--chrome-trace") {
      chrome_trace_path = next_value("--chrome-trace");
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--windows" || arg.rfind("--windows=", 0) == 0) {
      // Both `--windows W` and `--windows=W` map onto the obs_window
      // config key, so the flag and the file share one validator.
      const std::string value = arg == "--windows"
                                    ? next_value("--windows")
                                    : arg.substr(std::strlen("--windows="));
      const std::string err =
          core::ApplyConfigOption("obs_window", value, &config);
      if (!err.empty()) {
        std::fprintf(stderr, "--windows: %s\n", err.c_str());
        return 2;
      }
      windows = true;
    } else if (arg == "--flight-recorder-max-dumps" ||
               arg.rfind("--flight-recorder-max-dumps=", 0) == 0) {
      const std::string value =
          arg == "--flight-recorder-max-dumps"
              ? next_value("--flight-recorder-max-dumps")
              : arg.substr(std::strlen("--flight-recorder-max-dumps="));
      const std::string err =
          core::ApplyConfigOption("flight_recorder_max_dumps", value, &config);
      if (!err.empty()) {
        std::fprintf(stderr, "--flight-recorder-max-dumps: %s\n", err.c_str());
        return 2;
      }
    } else if (arg == "--flight-recorder" ||
               arg.rfind("--flight-recorder=", 0) == 0) {
      const std::string value =
          arg == "--flight-recorder"
              ? next_value("--flight-recorder")
              : arg.substr(std::strlen("--flight-recorder="));
      const std::string err =
          core::ApplyConfigOption("flight_recorder", value, &config);
      if (!err.empty()) {
        std::fprintf(stderr, "--flight-recorder: %s\n", err.c_str());
        return 2;
      }
    } else if (arg == "--frames" || arg.rfind("--frames=", 0) == 0) {
      const std::string value = arg == "--frames"
                                    ? next_value("--frames")
                                    : arg.substr(std::strlen("--frames="));
      const std::string err = core::ApplyConfigOption("frames", value, &config);
      if (!err.empty()) {
        std::fprintf(stderr, "--frames: %s\n", err.c_str());
        return 2;
      }
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--print-config") {
      print_config = true;
    } else if (arg == "--recommend") {
      recommend = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  const std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "invalid configuration: %s\n", error.c_str());
    return 2;
  }

  if (print_config) {
    std::fputs(core::ConfigToText(config).c_str(), stdout);
    return 0;
  }

  if (recommend) {
    const std::vector<double> loads =
        sweep.empty() ? std::vector<double>{config.think_time_ratio} : sweep;
    const analysis::Recommendation rec =
        analysis::RecommendRobust(config, loads);
    std::printf("recommended: pull_bw=%.2f thres_perc=%.2f chop=%u "
                "(predicted response %.1f)\n",
                rec.pull_bw, rec.thres_perc, rec.chop,
                rec.predicted_response);
    return 0;
  }

  core::SteadyStateProtocol steady;
  core::WarmupProtocol warm;
  if (quick) {
    steady.post_fill_accesses = 500;
    steady.min_measured_accesses = 1000;
    steady.max_measured_accesses = 3000;
    steady.batch_size = 500;
    steady.tolerance = 0.1;
  }

  std::vector<core::SweepPoint> points;
  if (sweep.empty()) sweep.push_back(config.think_time_ratio);
  for (const double ttr : sweep) {
    core::SweepPoint point;
    point.curve = core::DeliveryModeName(config.mode);
    point.x = ttr;
    point.config = config;
    point.config.think_time_ratio = ttr;
    point.warmup_run = warmup;
    points.push_back(point);
  }

  const bool recorder_armed = !config.flight_recorder.empty();
  const bool frames_on = !config.frames.empty();
  const bool profiled = !profile_path.empty() || !folded_path.empty() ||
                        !chrome_trace_path.empty();
  const bool observed = !metrics_json_path.empty() || !trace_path.empty() ||
                        progress || windows || recorder_armed || profiled ||
                        frames_on;
  std::vector<core::SweepOutcome> outcomes;
  if (!observed) {
    try {
      outcomes = core::RunSweep(points, steady, warm, num_threads);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep failed: %s\n", e.what());
      return 1;
    }
  } else {
    // Observability wants one System it can attach to before the run, so
    // the observed path runs a single point inline instead of sweeping.
    if (points.size() != 1) {
      std::fprintf(stderr,
                   "--metrics-json/--trace/--profile/--progress need a "
                   "single-point run; drop --sweep or give it one value\n");
      return 2;
    }
    core::System system(points[0].config);
    obs::MetricsRegistry registry;
    obs::TraceSink sink;
    obs::PhaseProfiler profiler;
    if (!metrics_json_path.empty()) system.AttachMetrics(&registry);
    // The flight recorder's dump wants the trailing trace, so arming it
    // attaches the sink even without --trace (no file is written then).
    // The Chrome trace's sim-time track is assembled from the same sink.
    if (!trace_path.empty() || recorder_armed ||
        !chrome_trace_path.empty()) {
      system.AttachTrace(&sink);
    }
    if (profiled) system.AttachProfiler(&profiler);
    std::optional<obs::WindowedCollector> collector;
    std::optional<obs::FlightRecorder> recorder;
    std::optional<obs::TelemetryBus> bus;
    if (windows || recorder_armed || frames_on) {
      collector.emplace(points[0].config.obs_window);
      system.AttachWindowedCollector(&*collector);
    }
    if (recorder_armed) {
      obs::FlightTriggers triggers;
      const std::string trigger_error = obs::ParseFlightTriggerSpec(
          points[0].config.flight_recorder, &triggers);
      if (!trigger_error.empty()) {  // Config validation already caught this.
        std::fprintf(stderr, "flight_recorder: %s\n", trigger_error.c_str());
        return 2;
      }
      recorder.emplace(triggers, "bdisk-flight-",
                       points[0].config.flight_recorder_max_dumps);
      system.AttachFlightRecorder(&*recorder);
    }
    if (frames_on) {
      std::string sink_error;
      std::unique_ptr<obs::FrameSink> frame_sink =
          obs::MakeFrameSink(points[0].config.frames, &sink_error);
      if (frame_sink == nullptr) {
        std::fprintf(stderr, "--frames %s: %s\n",
                     points[0].config.frames.c_str(), sink_error.c_str());
        return 2;
      }
      bus.emplace(std::move(frame_sink));
      system.AttachTelemetryBus(&*bus);
    }
    std::optional<obs::ProgressReporter> reporter;
    if (progress) {
      reporter.emplace(&system.simulator(), /*interval=*/10000.0);
      if (warmup) {
        const double target = warm.target_fraction;
        reporter->SetFractionCallback([&system, target] {
          return std::min(1.0,
                          system.mc().warmup_tracker()->Fraction() / target);
        });
      } else {
        // Rough access budget: cache fill (~2x cache size on a skewed
        // pattern) + post-fill skip + the measurement cap. Runs that
        // converge early simply jump to done.
        const double approx_total = static_cast<double>(
            2ULL * points[0].config.cache_size + steady.post_fill_accesses +
            steady.max_measured_accesses);
        reporter->SetFractionCallback([&system, approx_total] {
          return std::min(
              1.0, static_cast<double>(system.mc().TotalAccesses()) /
                       approx_total);
        });
      }
      reporter->Start();
    }
    core::SweepOutcome outcome;
    outcome.point = points[0];
    outcome.result =
        warmup ? system.RunWarmup(warm) : system.RunSteadyState(steady);
    outcomes.push_back(outcome);
    if (!metrics_json_path.empty()) {
      system.SnapshotMetrics(&registry);
      if (!WriteFileOrComplain(metrics_json_path, registry.ToJson())) {
        return 1;
      }
    }
    if (!trace_path.empty()) {
      const std::string body =
          EndsWith(trace_path, ".csv") ? sink.ToCsv() : sink.ToJsonl();
      if (!WriteFileOrComplain(trace_path, body)) return 1;
    }
    if (!profile_path.empty()) {
      if (!WriteFileOrComplain(profile_path, profiler.ToProfJson())) {
        return 1;
      }
    }
    if (!folded_path.empty()) {
      if (!WriteFileOrComplain(folded_path, profiler.ToFolded())) return 1;
    }
    if (!chrome_trace_path.empty()) {
      obs::SpanAssembler assembler(sink.DroppedEvents() > 0);
      assembler.FeedAll(sink.Events());
      const std::vector<obs::RequestSpan> spans = assembler.Finish();
      if (!WriteFileOrComplain(chrome_trace_path,
                               profiler.ToChromeTrace(&spans))) {
        return 1;
      }
    }
    if (recorder && recorder->FireCount() > 0) {
      if (!recorder->LastError().empty()) {
        std::fprintf(stderr, "flight recorder fired but dump failed: %s\n",
                     recorder->LastError().c_str());
      } else {
        std::fprintf(stderr, "flight recorder fired %llu time(s), last: %s\n",
                     static_cast<unsigned long long>(recorder->FireCount()),
                     recorder->DumpPath().c_str());
      }
    }
    if (bus && bus->FramesDropped() > 0) {
      std::fprintf(stderr,
                   "telemetry: %llu of %llu frames dropped (receiver too "
                   "slow; seq gaps carry the deltas forward)\n",
                   static_cast<unsigned long long>(bus->FramesDropped()),
                   static_cast<unsigned long long>(bus->FramesEmitted()));
    }
  }

  if (csv) {
    std::fputs((warmup ? core::WarmupToCsv(outcomes)
                       : core::SweepToCsv(outcomes))
                   .c_str(),
               stdout);
    return 0;
  }

  if (warmup) {
    core::TablePrinter table({"TTR", "fraction", "time"});
    for (const auto& outcome : outcomes) {
      for (const auto& point : outcome.result.warmup) {
        table.AddRow({core::TablePrinter::Fmt(outcome.point.x, 0),
                      core::TablePrinter::Pct(point.fraction, 0),
                      point.time == sim::kTimeNever
                          ? "never"
                          : core::TablePrinter::Fmt(point.time, 0)});
      }
    }
    std::printf("%s", table.ToString().c_str());
  } else {
    core::TablePrinter table({"TTR", "response", "p50", "p95", "p99",
                              "hit rate", "drop rate", "push/pull/idle",
                              "converged"});
    for (const auto& outcome : outcomes) {
      const core::RunResult& r = outcome.result;
      table.AddRow(
          {core::TablePrinter::Fmt(outcome.point.x, 0),
           core::TablePrinter::Fmt(r.mean_response, 1),
           core::TablePrinter::Fmt(r.response_p50, 1),
           core::TablePrinter::Fmt(r.response_p95, 1),
           core::TablePrinter::Fmt(r.response_p99, 1),
           core::TablePrinter::Pct(r.mc_hit_rate),
           core::TablePrinter::Pct(r.drop_rate),
           core::TablePrinter::Pct(r.push_slot_frac, 0) + "/" +
               core::TablePrinter::Pct(r.pull_slot_frac, 0) + "/" +
               core::TablePrinter::Pct(r.idle_slot_frac, 0),
           r.converged ? "yes" : "no"});
    }
    std::printf("%s", table.ToString().c_str());
  }
  return 0;
}
