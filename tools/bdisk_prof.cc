// bdisk_prof — aggregate and diff bdisk-prof-v1 wall-clock profiles.
//
// A profile comes from `bdisk_sim --profile F` (or PhaseProfiler::
// ToProfJson() directly). Two subcommands:
//
//   bdisk_prof report PROFILE.json [--top N]
//       Per-phase attribution table, sorted by total time: calls, work
//       items, estimated total/self nanoseconds, and ns per work item.
//
//   bdisk_prof diff BASELINE.json CURRENT.json [--tolerance PCT]
//                                              [--floor-ns NS]
//       Percent-delta comparison in the style of bdisk_compare, with two
//       concessions to wall-clock noise: deltas within --tolerance pass
//       (default 25%), and phases whose total_ns stays under --floor-ns
//       in both profiles (default 50000) are reported but never gate.
//
// exit: 0 ok / within tolerance, 1 regression, 2 usage or parse error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using bdisk::obs::JsonValue;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: bdisk_prof report PROFILE.json [--top N]\n"
      "       bdisk_prof diff BASELINE.json CURRENT.json\n"
      "                  [--tolerance PCT] [--floor-ns NS]\n"
      "  report: per-phase wall-clock attribution, sorted by total time\n"
      "  diff:   percent deltas per phase; deltas within --tolerance\n"
      "          (default 25%%) pass, and phases under --floor-ns\n"
      "          (default 50000) in both profiles never gate\n"
      "exit: 0 ok, 1 regression, 2 usage/parse error\n");
}

struct PhaseRow {
  std::string name;
  double calls = 0.0;
  double ops = 0.0;
  double total_ns = 0.0;
  double self_ns = 0.0;
  double ns_per_op = 0.0;
};

struct Profile {
  std::string backend;
  std::string clock;
  std::vector<PhaseRow> phases;  // File order; report sorts a copy.
};

double NumberField(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : 0.0;
}

bool LoadProfile(const std::string& path, Profile* out, std::string* why) {
  std::string text;
  if (!ReadFile(path, &text)) {
    *why = "cannot open " + path;
    return false;
  }
  JsonValue root;
  std::string parse_error;
  if (!bdisk::obs::ParseJson(text, &root, &parse_error)) {
    *why = path + ": " + parse_error;
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != "bdisk-prof-v1") {
    *why = path + ": not a bdisk-prof-v1 profile";
    return false;
  }
  const JsonValue* backend = root.Find("backend");
  if (backend != nullptr && backend->kind == JsonValue::Kind::kString) {
    out->backend = backend->string;
  }
  const JsonValue* clock = root.Find("clock");
  if (clock != nullptr && clock->kind == JsonValue::Kind::kString) {
    out->clock = clock->string;
  }
  const JsonValue* phases = root.Find("phases");
  if (phases == nullptr || phases->kind != JsonValue::Kind::kObject) {
    *why = path + ": profile has no phases section";
    return false;
  }
  for (const auto& [name, value] : phases->object) {
    if (value.kind != JsonValue::Kind::kObject) continue;
    PhaseRow row;
    row.name = name;
    row.calls = NumberField(value, "calls");
    row.ops = NumberField(value, "ops");
    row.total_ns = NumberField(value, "total_ns");
    row.self_ns = NumberField(value, "self_ns");
    row.ns_per_op = NumberField(value, "ns_per_op");
    out->phases.push_back(std::move(row));
  }
  return true;
}

const PhaseRow* FindPhase(const Profile& profile, const std::string& name) {
  for (const PhaseRow& row : profile.phases) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

int RunReport(const std::string& path, std::size_t top) {
  Profile profile;
  std::string why;
  if (!LoadProfile(path, &profile, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  std::vector<PhaseRow> rows = profile.phases;
  std::sort(rows.begin(), rows.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.total_ns > b.total_ns;
            });
  double run_total = 0.0;
  if (const PhaseRow* run = FindPhase(profile, "run")) {
    run_total = run->total_ns;
  }
  std::printf("profile %s (backend %s, clock %s)\n", path.c_str(),
              profile.backend.c_str(), profile.clock.c_str());
  std::printf("%-16s %12s %12s %12s %12s %10s %7s\n", "phase", "calls",
              "ops", "total_ms", "self_ms", "ns/op", "%run");
  std::size_t printed = 0;
  for (const PhaseRow& row : rows) {
    if (top != 0 && printed >= top) break;
    ++printed;
    std::printf("%-16s %12.0f %12.0f %12.3f %12.3f %10.1f %6.1f%%\n",
                row.name.c_str(), row.calls, row.ops, row.total_ns / 1e6,
                row.self_ns / 1e6, row.ns_per_op,
                run_total > 0.0 ? 100.0 * row.total_ns / run_total : 0.0);
  }
  return 0;
}

int RunDiff(const std::string& baseline_path,
            const std::string& current_path, double tolerance,
            double floor_ns) {
  Profile baseline, current;
  std::string why;
  if (!LoadProfile(baseline_path, &baseline, &why) ||
      !LoadProfile(current_path, &current, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  if (baseline.backend != current.backend) {
    std::printf("note: comparing backends %s vs %s\n",
                baseline.backend.c_str(), current.backend.c_str());
  }

  std::size_t compared = 0, regressions = 0;
  std::printf("%-16s %14s %14s %11s  %s\n", "phase", "baseline", "current",
              "delta", "field");
  const auto compare = [&](const std::string& name, const char* field,
                           double old_v, double new_v, bool gates) {
    ++compared;
    double delta_pct = 0.0;
    if (new_v != old_v) {
      delta_pct = old_v != 0.0 ? 100.0 * (new_v - old_v) / std::fabs(old_v)
                               : (new_v != 0.0 ? INFINITY : 0.0);
    }
    const bool regressed =
        gates &&
        (std::fabs(delta_pct) > tolerance || !std::isfinite(delta_pct));
    if (regressed) ++regressions;
    if (delta_pct != 0.0 || regressed) {
      std::printf("%c %-14s %14.6g %14.6g %+10.3f%%  %s%s\n",
                  regressed ? '!' : '~', name.c_str(), old_v, new_v,
                  delta_pct, field, gates ? "" : " (under floor)");
    }
  };

  for (const PhaseRow& old_row : baseline.phases) {
    const PhaseRow* new_row = FindPhase(current, old_row.name);
    // A phase entirely under the floor on both sides is timing noise (or
    // a feature that never ran); report it but never fail on it.
    const double new_total = new_row != nullptr ? new_row->total_ns : 0.0;
    const bool gates =
        old_row.total_ns >= floor_ns || new_total >= floor_ns;
    if (new_row == nullptr) {
      if (gates) {
        ++regressions;
        std::printf("! %-14s %14.6g %14s %11s  total_ns\n",
                    old_row.name.c_str(), old_row.total_ns, "(missing)",
                    "");
      }
      continue;
    }
    compare(old_row.name, "total_ns", old_row.total_ns, new_row->total_ns,
            gates);
    compare(old_row.name, "ns_per_op", old_row.ns_per_op,
            new_row->ns_per_op, gates);
  }
  for (const PhaseRow& new_row : current.phases) {
    if (FindPhase(baseline, new_row.name) != nullptr) continue;
    if (new_row.total_ns < floor_ns) continue;
    ++regressions;
    std::printf("! %-14s %14s %14.6g %11s  total_ns\n",
                new_row.name.c_str(), "(missing)", new_row.total_ns, "");
  }

  std::printf("compared %zu fields: %zu beyond %.3g%% tolerance "
              "(floor %.3g ns)\n",
              compared, regressions, tolerance, floor_ns);
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::vector<std::string> paths;
  double tolerance = 25.0;
  double floor_ns = 50000.0;
  std::size_t top = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto parse_nonneg = [&](const char* flag) -> double {
      const char* value = next_value(flag);
      char* end = nullptr;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed < 0.0) {
        std::fprintf(stderr, "%s expects a non-negative number\n", flag);
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--tolerance") {
      tolerance = parse_nonneg("--tolerance");
    } else if (arg == "--floor-ns") {
      floor_ns = parse_nonneg("--floor-ns");
    } else if (arg == "--top") {
      top = static_cast<std::size_t>(parse_nonneg("--top"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (command.empty()) {
      command = arg;
    } else {
      paths.push_back(arg);
    }
  }

  if (command == "report" && paths.size() == 1) {
    return RunReport(paths[0], top);
  }
  if (command == "diff" && paths.size() == 2) {
    return RunDiff(paths[0], paths[1], tolerance, floor_ns);
  }
  PrintUsage();
  return 2;
}
