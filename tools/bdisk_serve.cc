// bdisk_serve — the broadcast server on a real wire.
//
// Runs the same event kernel the simulations use, but paced by the wall
// clock: one broadcast slot every --slot-us microseconds, each delivered
// slot fanned out as one bdisk-wire-v1 datagram per connected client over
// a nonblocking AF_UNIX datagram socket. Pull requests arrive as PULL
// datagrams and enter the very pull queue the paper's MUX serves.
// Examples:
//
//   bdisk_serve --socket /tmp/bd.sock
//   bdisk_serve --socket bd.sock --slot-us 200 --max-slots 5000
//       --set server_db_size=100 --set disk_sizes=10,40,50
//   bdisk_serve --socket bd.sock --frames unix:/tmp/frames.sock   # bdisk_top
//
// Robustness semantics (ROBUSTNESS.md, Transport):
//   - heartbeat deadlines: any datagram from a peer refreshes it; peers
//     silent past --heartbeat-s are evicted;
//   - drop-newest backpressure: a slot send the kernel refuses is dropped
//     and counted by cause (transport.drop_*), never retried, never
//     blocking the slot cadence;
//   - reconnect: HELLO from a known client re-keys its reply address and
//     restarts the slot epoch — counters reconcile across client crashes;
//   - graceful drain: SIGTERM/SIGINT sends FIN to every peer, then exits
//     with a summary (and --metrics-json snapshot).
//
// Transport-level faults come from the config's fault.* plan: slot_loss /
// slot_corruption / request_loss act on the wire (judged by a dedicated
// salted stream), while the remaining plan (outages, degraded mode,
// request_delay) stays inside the server — each fault applies exactly
// once.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/config_io.h"
#include "core/provenance.h"
#include "core/system.h"
#include "fault/fault_injector.h"
#include "obs/frame_sink.h"
#include "obs/metrics.h"
#include "obs/telemetry_bus.h"
#include "obs/windowed_collector.h"
#include "server/broadcast_server.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "transport/datagram_transport.h"

namespace {

// Salts the wire-fault stream away from the seed and every other salted
// stream (noise/fault/retry in core::System) — serve-mode wire faults are
// deterministic per seed and perturb nothing else.
constexpr std::uint64_t kTransportSalt = 0x7247'A11C'5EEDULL;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::printf(
      "usage: bdisk_serve --socket PATH [options]\n"
      "  --socket PATH      serving AF_UNIX datagram socket (required)\n"
      "  --slot-us N        wall microseconds per broadcast slot\n"
      "                     (default 1000)\n"
      "  --max-slots N      stop after N slots (default 0: until SIGTERM)\n"
      "  --heartbeat-s S    evict peers silent for S wall seconds\n"
      "                     (default 5; 0 disables eviction)\n"
      "  --max-peers N      refuse HELLOs beyond N peers (default 64)\n"
      "  --set KEY=VALUE    override one config key (repeatable)\n"
      "  --config FILE      load key=value config file\n"
      "  --seed N           root RNG seed\n"
      "  --frames DEST      stream live bdisk-frame-v1 frames (\"-\" stdout,\n"
      "                     \"unix:PATH\" datagram, else file)\n"
      "  --metrics-json F   write a bdisk-metrics-v1 snapshot on exit\n"
      "  --help             this message\n"
      "SIGTERM/SIGINT drains gracefully: FIN to every peer, summary, exit "
      "0.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdisk;

  core::SystemConfig config;
  std::string socket_path;
  std::string frames_dest;
  std::string metrics_json;
  std::uint64_t slot_us = 1000;
  std::uint64_t max_slots = 0;
  double heartbeat_s = 5.0;
  std::uint64_t max_peers = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next_value("--socket");
    } else if (arg == "--slot-us") {
      slot_us = std::strtoull(next_value("--slot-us"), nullptr, 10);
    } else if (arg == "--max-slots") {
      max_slots = std::strtoull(next_value("--max-slots"), nullptr, 10);
    } else if (arg == "--heartbeat-s") {
      heartbeat_s = std::strtod(next_value("--heartbeat-s"), nullptr);
    } else if (arg == "--max-peers") {
      max_peers = std::strtoull(next_value("--max-peers"), nullptr, 10);
    } else if (arg == "--set") {
      const std::string kv = next_value("--set");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set wants KEY=VALUE\n");
        return 2;
      }
      const std::string error = core::ApplyConfigOption(
          kv.substr(0, eq), kv.substr(eq + 1), &config);
      if (!error.empty()) {
        std::fprintf(stderr, "--set %s: %s\n", kv.c_str(), error.c_str());
        return 2;
      }
    } else if (arg == "--config") {
      const char* path = next_value("--config");
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return 2;
      }
      std::stringstream body;
      body << file.rdbuf();
      const std::string error = core::ParseConfigText(body.str(), &config);
      if (!error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (arg == "--frames") {
      frames_dest = next_value("--frames");
    } else if (arg == "--metrics-json") {
      metrics_json = next_value("--metrics-json");
    } else if (arg == "--help") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    PrintUsage();
    return 2;
  }
  if (slot_us == 0) {
    std::fprintf(stderr, "--slot-us must be positive\n");
    return 2;
  }
  {
    const std::string error = config.Validate();
    if (!error.empty()) {
      std::fprintf(stderr, "invalid config: %s\n", error.c_str());
      return 2;
    }
  }

  // The serve kernel: the exact components a simulated System wires, minus
  // the in-process clients — real peers take their place on the wire. The
  // server RNG is the root's first Split(), matching System's stream
  // order, so a serve-mode MUX trajectory equals the sim's for the same
  // seed and request arrivals.
  sim::Simulator simulator;
  sim::Rng root(config.seed);
  sim::Rng server_rng = root.Split();
  server::BroadcastServer server(&simulator, core::ProgramForConfig(config),
                                 config.EffectivePullBw(),
                                 config.server_queue_size, server_rng);

  // Split the fault plan: wire-level rates feed the transport injector
  // (its own salted stream), everything else stays server-side.
  fault::FaultPlan wire_plan;
  wire_plan.slot_loss = config.fault.slot_loss;
  wire_plan.slot_corruption = config.fault.slot_corruption;
  wire_plan.request_loss = config.fault.request_loss;
  std::optional<fault::FaultInjector> wire_injector;
  if (wire_plan.Enabled()) {
    wire_injector.emplace(wire_plan, sim::Rng(config.seed ^ kTransportSalt));
  }
  fault::FaultPlan server_plan = config.fault;
  server_plan.slot_loss = 0.0;
  server_plan.slot_corruption = 0.0;
  server_plan.request_loss = 0.0;
  std::optional<fault::FaultInjector> server_injector;
  if (server_plan.Enabled()) {
    server_injector.emplace(server_plan,
                            sim::Rng(config.seed ^ 0xFA017'1A7EC7EDULL));
    server.SetFaultInjector(&*server_injector);
  }

  transport::DatagramServerOptions options;
  options.socket_path = socket_path;
  options.heartbeat_deadline = heartbeat_s;
  options.max_peers = static_cast<std::uint32_t>(max_peers);
  options.db_size = config.server_db_size;
  options.cycle_len = server.program().Length();
  options.slot_us = static_cast<std::uint32_t>(slot_us);
  options.injector = wire_injector ? &*wire_injector : nullptr;

  transport::DatagramServerTransport transport;
  {
    std::string error;
    if (!transport.Bind(options, &server, &error)) {
      std::fprintf(stderr, "bdisk_serve: %s\n", error.c_str());
      return 2;
    }
  }

  const auto probe = [&] {
    std::vector<obs::CounterSample> samples;
    samples.reserve(21);
    const server::PullQueue& queue = server.queue();
    samples.push_back({"server.slots_push", server.PushSlots()});
    samples.push_back({"server.slots_pull", server.PullSlots()});
    samples.push_back({"server.slots_idle", server.IdleSlots()});
    samples.push_back({"server.queue.submitted", queue.SubmittedCount()});
    samples.push_back({"server.queue.accepted", queue.AcceptedCount()});
    samples.push_back({"server.queue.coalesced", queue.CoalescedCount()});
    samples.push_back({"server.queue.dropped", queue.DroppedCount()});
    transport.AppendCounterSamples(&samples);
    return samples;
  };

  // Live telemetry rides the same bus as the simulations; the probe adds
  // the transport.* counters (serve-mode only — sim snapshots never carry
  // them). Windows close on sim time, i.e. every obs_window slots.
  std::optional<obs::WindowedCollector> collector;
  std::optional<obs::TelemetryBus> bus;
  if (!frames_dest.empty()) {
    std::string sink_error;
    std::unique_ptr<obs::FrameSink> sink =
        obs::MakeFrameSink(frames_dest, &sink_error);
    if (sink == nullptr) {
      std::fprintf(stderr, "--frames %s: %s\n", frames_dest.c_str(),
                   sink_error.c_str());
      return 2;
    }
    collector.emplace(config.obs_window);
    server.SetWindowedCollector(&*collector);
    bus.emplace(std::move(sink));
    bus->SetProbe(probe);
    collector->SetTelemetryBus(&*bus);
    server.SetTelemetryBus(&*bus);
    bus->EmitRunStart(simulator.Now(),
                      {{"tool", "bdisk_serve"},
                       {"transport", transport.Describe()},
                       {"seed", std::to_string(config.seed)},
                       {"db_size", std::to_string(config.server_db_size)},
                       {"slot_us", std::to_string(slot_us)}});
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  std::fprintf(stderr,
               "bdisk_serve: listening on %s (db=%u cycle=%u slot=%lluus "
               "heartbeat=%.3gs max_peers=%llu build=%s rev=%s)\n",
               socket_path.c_str(), config.server_db_size,
               server.program().Length(),
               static_cast<unsigned long long>(slot_us), heartbeat_s,
               static_cast<unsigned long long>(max_peers), core::BuildType(),
               core::GitRev());

  const auto start = std::chrono::steady_clock::now();
  const auto wall_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // The serve loop: between slot deadlines, block on the socket (bounded
  // so signals are honored) and drain requests; at each deadline, run the
  // kernel one slot forward — the slot boundary event fires and the
  // transport (a BroadcastListener) puts the slot on the wire.
  std::uint64_t slots_done = 0;
  while (g_stop == 0 && (max_slots == 0 || slots_done < max_slots)) {
    const double deadline =
        static_cast<double>(slots_done + 1) * static_cast<double>(slot_us) *
        1e-6;
    for (;;) {
      if (g_stop != 0) break;
      const double remaining = deadline - wall_s();
      if (remaining <= 0.0) break;
      int timeout_ms = static_cast<int>(remaining * 1000.0);
      if (timeout_ms > 50) timeout_ms = 50;
      transport.WaitReadable(timeout_ms);
      transport.Poll(wall_s());
    }
    if (g_stop != 0) break;
    simulator.RunUntil(static_cast<double>(slots_done + 1));
    ++slots_done;
    transport.EvictDeadPeers(wall_s());
  }

  // Drain: answer any last BYEs, then say goodbye to whoever remains.
  transport.Poll(wall_s());
  transport.Shutdown(g_stop != 0 ? "drain" : "complete");

  if (collector) collector->Finish();
  if (bus) {
    bus->EmitRunEnd(simulator.Now());
    if (bus->FramesDropped() > 0) {
      std::fprintf(stderr, "telemetry: %llu of %llu frames dropped\n",
                   static_cast<unsigned long long>(bus->FramesDropped()),
                   static_cast<unsigned long long>(bus->FramesEmitted()));
    }
  }

  if (!metrics_json.empty()) {
    obs::MetricsRegistry registry;
    const auto counter = [&registry](const char* name, std::uint64_t v) {
      registry.GetCounter(name)->Set(v);
    };
    const server::PullQueue& queue = server.queue();
    counter("server.slots_total", server.TotalSlots());
    counter("server.slots_push", server.PushSlots());
    counter("server.slots_pull", server.PullSlots());
    counter("server.slots_idle", server.IdleSlots());
    counter("server.queue.submitted", queue.SubmittedCount());
    counter("server.queue.accepted", queue.AcceptedCount());
    counter("server.queue.coalesced", queue.CoalescedCount());
    counter("server.queue.dropped", queue.DroppedCount());
    transport.SnapshotMetrics(&registry);
    std::FILE* out = std::fopen(metrics_json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
      return 2;
    }
    const std::string json = registry.ToJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }

  const double elapsed = wall_s();
  const transport::TransportCounters& c = transport.counters();
  std::printf(
      "bdisk_serve: %llu slots in %.3fs (%.1f slots/s sustained)\n"
      "  peers: hellos=%llu reconnects=%llu evictions=%llu rejected=%llu\n"
      "  pulls: rx=%llu fault_dropped=%llu unknown_peer=%llu\n"
      "  slots: tx=%llu drop_backpressure=%llu drop_dead_peer=%llu "
      "drop_fault=%llu\n"
      "  datagrams: pings=%llu byes=%llu malformed=%llu\n",
      static_cast<unsigned long long>(slots_done), elapsed,
      elapsed > 0.0 ? static_cast<double>(slots_done) / elapsed : 0.0,
      static_cast<unsigned long long>(c.hellos),
      static_cast<unsigned long long>(c.reconnects),
      static_cast<unsigned long long>(c.evictions),
      static_cast<unsigned long long>(c.peers_rejected),
      static_cast<unsigned long long>(c.pulls_rx),
      static_cast<unsigned long long>(c.pulls_fault_dropped),
      static_cast<unsigned long long>(c.pulls_unknown_peer),
      static_cast<unsigned long long>(c.slots_tx),
      static_cast<unsigned long long>(c.drop_backpressure),
      static_cast<unsigned long long>(c.drop_dead_peer),
      static_cast<unsigned long long>(c.drop_fault),
      static_cast<unsigned long long>(c.pings_rx),
      static_cast<unsigned long long>(c.byes_rx),
      static_cast<unsigned long long>(c.malformed_rx));
  return 0;
}
