// bdisk_chaos — fault-injection sweep harness for the bdisk::fault layer.
//
// Sweeps a list of loss rates (applied to both broadcast slots and
// backchannel requests), runs one deterministic simulation per point with
// the client/server robustness mechanisms engaged, and prints the
// response-time degradation curve. Examples:
//
//   bdisk_chaos                              # default sweep 0,2%,5%,10%,20%
//   bdisk_chaos --loss 0,0.1,0.3 --seed 7
//   bdisk_chaos --loss 0.1 --quick --csv
//   bdisk_chaos --set server_db_size=100 --set disk_sizes=10,40,50
//       --set cache_size=10 --set server_queue_size=10 --quick
//
// The harness is also a correctness gate (CI runs it as a smoke test):
// it exits nonzero unless, at every point,
//   - the run terminated by reaching its access quota (no hung requests:
//     the measured client resolved every access as a hit, a delivery, or
//     an explicit abandon — never by the simulation clock running out);
//   - the pull-queue accounting balances: submitted == accepted +
//     coalesced + dropped(capacity) + shed + dropped(outage);
//   - with loss > 0, the fault layer actually injected faults and the
//     fault.* accounting is self-consistent.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/config_io.h"
#include "core/system.h"
#include "core/table_printer.h"
#include "obs/frame_sink.h"
#include "obs/telemetry_bus.h"
#include "obs/windowed_collector.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: bdisk_chaos [options]\n"
      "  --loss L1,L2,...   loss rates to sweep (default 0,0.02,0.05,\n"
      "                     0.1,0.2); each L is applied as both\n"
      "                     fault.slot_loss and fault.request_loss\n"
      "  --slot-only        apply loss to broadcast slots only\n"
      "  --request-only     apply loss to backchannel requests only\n"
      "  --outage-sweep     sweep timed server outage windows instead of\n"
      "                     loss: blackout and brownout crossed with every\n"
      "                     --outage-durations x --outage-periods point\n"
      "  --outage-durations D1,D2,...  window widths in broadcast units\n"
      "                     (default 50,200)\n"
      "  --outage-periods P1,P2,...    window spacings; 0 is a one-shot\n"
      "                     window (default 0,500)\n"
      "  --outage-start T   first window opens at sim time T (default 100)\n"
      "  --set KEY=VALUE    override one config key (repeatable)\n"
      "  --config FILE      load key=value config file\n"
      "  --seed N           root RNG seed\n"
      "  --quick            short measurement protocol\n"
      "  --csv              emit CSV instead of a table\n"
      "  --frames DEST      stream live bdisk-frame-v1 frames (\"-\" stdout,\n"
      "                     \"unix:PATH\" datagram, else file); needs a\n"
      "                     single --loss point — one stream is one run\n"
      "  --help             this message\n"
      "exits 1 when any point hangs, drops accounting, or fails to\n"
      "inject at a nonzero loss rate.\n");
}

bool ParseDoubleList(const std::string& text, std::vector<double>* out) {
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (end == item.c_str()) return false;
    out->push_back(parsed);
  }
  return !out->empty();
}

struct PointOutcome {
  double loss = 0.0;
  bdisk::core::RunResult result;
  std::vector<std::string> violations;
};

struct OutagePoint {
  bool brownout = false;
  double duration = 0.0;
  double period = 0.0;
  bdisk::core::RunResult result;
  std::vector<std::string> violations;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bdisk;

  core::SystemConfig base;
  std::vector<double> losses;
  bool slot_loss = true;
  bool request_loss = true;
  bool outage_sweep = false;
  std::vector<double> outage_durations;
  std::vector<double> outage_periods;
  double outage_start = 100.0;
  bool quick = false;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--loss") {
      if (!ParseDoubleList(next_value("--loss"), &losses)) {
        std::fprintf(stderr, "--loss wants a comma list of rates\n");
        return 2;
      }
    } else if (arg == "--slot-only") {
      request_loss = false;
    } else if (arg == "--request-only") {
      slot_loss = false;
    } else if (arg == "--outage-sweep") {
      outage_sweep = true;
    } else if (arg == "--outage-durations") {
      if (!ParseDoubleList(next_value("--outage-durations"),
                           &outage_durations)) {
        std::fprintf(stderr,
                     "--outage-durations wants a comma list of widths\n");
        return 2;
      }
    } else if (arg == "--outage-periods") {
      if (!ParseDoubleList(next_value("--outage-periods"),
                           &outage_periods)) {
        std::fprintf(stderr,
                     "--outage-periods wants a comma list of spacings\n");
        return 2;
      }
    } else if (arg == "--outage-start") {
      char* end = nullptr;
      outage_start = std::strtod(next_value("--outage-start"), &end);
      if (end == nullptr || *end != '\0' || outage_start < 0.0) {
        std::fprintf(stderr, "--outage-start wants a sim time >= 0\n");
        return 2;
      }
    } else if (arg == "--set") {
      const std::string kv = next_value("--set");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--set wants KEY=VALUE\n");
        return 2;
      }
      const std::string error = core::ApplyConfigOption(
          kv.substr(0, eq), kv.substr(eq + 1), &base);
      if (!error.empty()) {
        std::fprintf(stderr, "--set %s: %s\n", kv.c_str(), error.c_str());
        return 2;
      }
    } else if (arg == "--config") {
      const char* path = next_value("--config");
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return 2;
      }
      std::stringstream body;
      body << file.rdbuf();
      const std::string error = core::ParseConfigText(body.str(), &base);
      if (!error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      base.seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (arg == "--frames") {
      const std::string error =
          core::ApplyConfigOption("frames", next_value("--frames"), &base);
      if (!error.empty()) {
        std::fprintf(stderr, "--frames: %s\n", error.c_str());
        return 2;
      }
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (!slot_loss && !request_loss) {
    std::fprintf(stderr, "--slot-only and --request-only conflict\n");
    return 2;
  }
  if (outage_sweep) {
    if (!losses.empty()) {
      std::fprintf(stderr, "--outage-sweep and --loss conflict\n");
      return 2;
    }
    if (!base.frames.empty()) {
      std::fprintf(stderr, "--frames is not supported with --outage-sweep "
                           "(the grid is never a single run)\n");
      return 2;
    }
    if (outage_durations.empty()) outage_durations = {50.0, 200.0};
    if (outage_periods.empty()) outage_periods = {0.0, 500.0};
    for (const double d : outage_durations) {
      if (d <= 0.0) {
        std::fprintf(stderr, "outage duration %g must be > 0\n", d);
        return 2;
      }
    }
    for (const double p : outage_periods) {
      if (p < 0.0) {
        std::fprintf(stderr, "outage period %g must be >= 0\n", p);
        return 2;
      }
    }
  } else if (!outage_durations.empty() || !outage_periods.empty()) {
    std::fprintf(stderr,
                 "--outage-durations/--outage-periods need --outage-sweep\n");
    return 2;
  }
  if (losses.empty()) losses = {0.0, 0.02, 0.05, 0.1, 0.2};
  if (!base.frames.empty() && losses.size() != 1) {
    std::fprintf(stderr,
                 "--frames needs a single --loss point (a frame stream "
                 "describes exactly one run)\n");
    return 2;
  }
  for (const double loss : losses) {
    if (loss < 0.0 || loss > 1.0) {
      std::fprintf(stderr, "loss rate %g out of [0,1]\n", loss);
      return 2;
    }
  }

  core::SteadyStateProtocol protocol;
  if (quick) {
    protocol.post_fill_accesses = 500;
    protocol.min_measured_accesses = 1000;
    protocol.max_measured_accesses = 3000;
    protocol.batch_size = 500;
    protocol.tolerance = 0.1;
  }

  if (outage_sweep) {
    // Blackout/brownout crossed with every duration x period point, each
    // run through the same violation gates as the loss sweep: no hung
    // requests, balanced queue accounting, and proof the fault layer
    // actually opened windows.
    std::vector<OutagePoint> points;
    for (const bool brownout : {false, true}) {
      for (const double duration : outage_durations) {
        for (const double period : outage_periods) {
          OutagePoint point;
          point.brownout = brownout;
          point.duration = duration;
          point.period = period;
          core::SystemConfig config = base;
          config.fault.outage_start = outage_start;
          config.fault.outage_duration = duration;
          config.fault.outage_period = period;
          config.fault.brownout = brownout;
          const std::string error = config.Validate();
          if (!error.empty()) {
            std::fprintf(stderr,
                         "%s dur=%g period=%g: invalid config: %s\n",
                         brownout ? "brownout" : "blackout", duration,
                         period, error.c_str());
            return 2;
          }
          core::System system(config);
          const core::RunResult r = system.RunSteadyState(protocol);
          point.result = r;
          if (r.sim_time_end >= protocol.max_sim_time) {
            point.violations.push_back(
                "hung: run hit the simulation-time cap");
          }
          const std::uint64_t accounted =
              r.requests_accepted + r.requests_coalesced +
              r.requests_dropped + r.requests_shed +
              r.requests_dropped_outage;
          if (accounted != r.requests_submitted) {
            point.violations.push_back(
                "queue accounting: submitted != accepted + coalesced + "
                "dropped + shed + outage");
          }
          if (r.outages_started == 0) {
            point.violations.push_back("no outage windows started");
          }
          if (r.mc_accesses == 0) {
            point.violations.push_back(
                "measured client completed no accesses");
          }
          points.push_back(std::move(point));
        }
      }
    }

    using core::TablePrinter;
    bool failed = false;
    if (csv) {
      std::printf(
          "mode,duration,period,mean_response,p99,outages,outage_slots,"
          "outage_dropped,timeouts,retries,abandoned,fallbacks,ok\n");
    }
    TablePrinter table({"Mode", "Dur", "Period", "Mean", "P99", "Outages",
                        "IdleSlots", "OutDrop", "Timeouts", "Retries",
                        "Abandoned", "OK"});
    for (const OutagePoint& p : points) {
      const core::RunResult& r = p.result;
      const bool ok = p.violations.empty();
      failed = failed || !ok;
      const char* mode = p.brownout ? "brownout" : "blackout";
      if (csv) {
        std::printf(
            "%s,%g,%g,%.2f,%.2f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%d\n",
            mode, p.duration, p.period, r.mean_response, r.response_p99,
            static_cast<unsigned long long>(r.outages_started),
            static_cast<unsigned long long>(r.outage_slots),
            static_cast<unsigned long long>(r.requests_dropped_outage),
            static_cast<unsigned long long>(r.mc_timeouts_fired),
            static_cast<unsigned long long>(r.mc_retries_sent),
            static_cast<unsigned long long>(r.mc_abandoned),
            static_cast<unsigned long long>(r.mc_fallbacks), ok ? 1 : 0);
      } else {
        table.AddRow({mode, TablePrinter::Fmt(p.duration),
                      TablePrinter::Fmt(p.period),
                      TablePrinter::Fmt(r.mean_response),
                      TablePrinter::Fmt(r.response_p99),
                      std::to_string(r.outages_started),
                      std::to_string(r.outage_slots),
                      std::to_string(r.requests_dropped_outage),
                      std::to_string(r.mc_timeouts_fired),
                      std::to_string(r.mc_retries_sent),
                      std::to_string(r.mc_abandoned), ok ? "yes" : "NO"});
      }
      for (const std::string& v : p.violations) {
        std::fprintf(stderr, "%s dur=%g period=%g: VIOLATION: %s\n", mode,
                     p.duration, p.period, v.c_str());
      }
    }
    if (!csv) std::fputs(table.ToString().c_str(), stdout);
    return failed ? 1 : 0;
  }

  std::vector<PointOutcome> outcomes;
  for (const double loss : losses) {
    PointOutcome point;
    point.loss = loss;
    core::SystemConfig config = base;
    if (slot_loss) config.fault.slot_loss = loss;
    if (request_loss) config.fault.request_loss = loss;
    const std::string error = config.Validate();
    if (!error.empty()) {
      std::fprintf(stderr, "loss=%g: invalid config: %s\n", loss,
                   error.c_str());
      return 2;
    }

    core::System system(config);
    std::optional<obs::WindowedCollector> collector;
    std::optional<obs::TelemetryBus> bus;
    if (!config.frames.empty()) {
      std::string sink_error;
      std::unique_ptr<obs::FrameSink> frame_sink =
          obs::MakeFrameSink(config.frames, &sink_error);
      if (frame_sink == nullptr) {
        std::fprintf(stderr, "--frames %s: %s\n", config.frames.c_str(),
                     sink_error.c_str());
        return 2;
      }
      collector.emplace(config.obs_window);
      system.AttachWindowedCollector(&*collector);
      bus.emplace(std::move(frame_sink));
      system.AttachTelemetryBus(&*bus);
    }
    const core::RunResult r = system.RunSteadyState(protocol);
    point.result = r;
    if (bus && bus->FramesDropped() > 0) {
      std::fprintf(stderr, "telemetry: %llu of %llu frames dropped\n",
                   static_cast<unsigned long long>(bus->FramesDropped()),
                   static_cast<unsigned long long>(bus->FramesEmitted()));
    }

    // No hung requests: the run must end because the measured client hit
    // its access quota (simulator_.Stop()), not because the clock ran out
    // with a request stuck waiting forever.
    if (r.sim_time_end >= protocol.max_sim_time) {
      point.violations.push_back("hung: run hit the simulation-time cap");
    }
    const std::uint64_t accounted = r.requests_accepted +
                                    r.requests_coalesced +
                                    r.requests_dropped + r.requests_shed +
                                    r.requests_dropped_outage;
    if (accounted != r.requests_submitted) {
      point.violations.push_back(
          "queue accounting: submitted != accepted + coalesced + dropped "
          "+ shed + outage");
    }
    if (loss > 0.0) {
      if (slot_loss && r.fault_slots_lost == 0) {
        point.violations.push_back("no broadcast slots lost at loss > 0");
      }
      if (request_loss && r.fault_requests_lost == 0 &&
          r.mc_pulls_sent + r.vc_submitted > 0) {
        point.violations.push_back("no requests lost at loss > 0");
      }
    }
    if (r.mc_accesses == 0) {
      point.violations.push_back("measured client completed no accesses");
    }
    outcomes.push_back(std::move(point));
  }

  using core::TablePrinter;
  bool failed = false;
  if (csv) {
    std::printf(
        "loss,mean_response,p99,drop_rate,slots_lost,requests_lost,"
        "timeouts,retries,abandoned,fallbacks,shed,outage_dropped,ok\n");
  }
  TablePrinter table({"Loss", "Mean", "P99", "Drop%", "SlotsLost",
                      "ReqLost", "Timeouts", "Retries", "Abandoned",
                      "Fallbacks", "Shed", "OK"});
  for (const PointOutcome& p : outcomes) {
    const core::RunResult& r = p.result;
    const bool ok = p.violations.empty();
    failed = failed || !ok;
    if (csv) {
      std::printf("%g,%.2f,%.2f,%.4f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%d\n",
                  p.loss, r.mean_response, r.response_p99, r.drop_rate,
                  static_cast<unsigned long long>(r.fault_slots_lost),
                  static_cast<unsigned long long>(r.fault_requests_lost),
                  static_cast<unsigned long long>(r.mc_timeouts_fired),
                  static_cast<unsigned long long>(r.mc_retries_sent),
                  static_cast<unsigned long long>(r.mc_abandoned),
                  static_cast<unsigned long long>(r.mc_fallbacks),
                  static_cast<unsigned long long>(r.requests_shed),
                  static_cast<unsigned long long>(r.requests_dropped_outage),
                  ok ? 1 : 0);
    } else {
      table.AddRow({TablePrinter::Pct(p.loss), TablePrinter::Fmt(r.mean_response),
                    TablePrinter::Fmt(r.response_p99),
                    TablePrinter::Pct(r.drop_rate),
                    std::to_string(r.fault_slots_lost),
                    std::to_string(r.fault_requests_lost),
                    std::to_string(r.mc_timeouts_fired),
                    std::to_string(r.mc_retries_sent),
                    std::to_string(r.mc_abandoned),
                    std::to_string(r.mc_fallbacks),
                    std::to_string(r.requests_shed), ok ? "yes" : "NO"});
    }
    for (const std::string& v : p.violations) {
      std::fprintf(stderr, "loss=%g: VIOLATION: %s\n", p.loss, v.c_str());
    }
  }
  if (!csv) std::fputs(table.ToString().c_str(), stdout);
  return failed ? 1 : 0;
}
