// Advanced Traveler Information System (ATIS) scenario — the paper's
// motivating warm-up example (§4.1.3, citing [Shek96]): "motorists join the
// 'system' when they drive within range of the information broadcast."
//
// A motorist's receiver starts with a cold cache. What matters is how fast
// it acquires the hot traffic pages — and that answer flips with system
// load: under light load pull wins; under rush-hour load the periodic
// broadcast wins because the server is saturated and drops requests.

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"
#include "core/table_printer.h"

int main() {
  using namespace bdisk;

  // Traffic database: 1000 road-segment pages, the paper's disk layout.
  // Light traffic (TTR=25) vs rush hour (TTR=250).
  const std::vector<double> loads = {25.0, 250.0};
  const std::vector<core::DeliveryMode> modes = {
      core::DeliveryMode::kPurePush, core::DeliveryMode::kPurePull,
      core::DeliveryMode::kIpp};

  std::vector<core::SweepPoint> points;
  for (const double ttr : loads) {
    for (const core::DeliveryMode mode : modes) {
      core::SweepPoint point;
      point.curve = core::DeliveryModeName(mode);
      point.x = ttr;
      point.config.mode = mode;
      point.config.pull_bw = 0.5;
      point.config.think_time_ratio = ttr;
      point.config.steady_state_perc = 0.0;  // Everyone is just arriving.
      point.warmup_run = true;
      points.push_back(point);
    }
  }

  std::printf("ATIS warm-up: time (broadcast units) for a newly arrived\n"
              "motorist's cache to hold X%% of its ideal contents.\n\n");

  const auto outcomes = core::RunSweep(points);

  for (const double ttr : loads) {
    std::printf("--- %s (ThinkTimeRatio = %.0f) ---\n",
                ttr < 100 ? "light traffic" : "rush hour", ttr);
    core::TablePrinter table({"warm-up %", "Push", "Pull", "IPP"});
    const std::vector<double> fractions = {0.1, 0.3, 0.5, 0.7, 0.9, 0.95};
    for (const double f : fractions) {
      std::vector<std::string> row = {core::TablePrinter::Pct(f, 0)};
      for (const core::DeliveryMode mode : modes) {
        for (const auto& outcome : outcomes) {
          if (outcome.point.x != ttr ||
              outcome.point.config.mode != mode) {
            continue;
          }
          double time = -1.0;
          for (const auto& wp : outcome.result.warmup) {
            if (wp.fraction == f) time = wp.time;
          }
          row.push_back(core::TablePrinter::Fmt(time, 0));
        }
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("Expected shape (paper Figure 4): Pull warms fastest in light\n"
              "traffic; at rush hour the ordering inverts and Push wins.\n");
  return 0;
}
