// Quickstart: build one IPP system with the paper's default parameters,
// run it to steady state, and print what happened.
//
// This is the 60-second tour of the public API:
//   SystemConfig -> System -> RunSteadyState -> RunResult.

#include <cstdio>

#include "core/system.h"
#include "core/table_printer.h"

int main() {
  using namespace bdisk;

  // 1. Describe the system. Defaults are the paper's Table 3 settings:
  //    1000-page database on three disks {100,400,500} spinning at 3:2:1,
  //    100-page client caches, 100-entry server queue, Zipf(0.95) access.
  core::SystemConfig config;
  config.mode = core::DeliveryMode::kIpp;  // Push + pull, interleaved.
  config.pull_bw = 0.5;            // Up to half the slots answer pulls.
  config.thres_perc = 0.25;        // Pull only pages > 1/4 cycle away.
  config.think_time_ratio = 50.0;  // Backchannel load of ~50 clients.

  // 2. Build it. This generates the Broadcast Disk program (with the
  //    CacheSize hottest pages Offset onto the slowest disk), wires up the
  //    server's Push/Pull MUX, the measured client (PIX cache), and the
  //    virtual client standing in for everyone else.
  core::System system(config);

  std::printf("Broadcast program: %u slots per major cycle\n",
              system.program().Length());
  std::printf("Fastest-disk page frequency: %u per cycle\n",
              system.program().Frequency(system.layout().disk_pages[0][0]));

  // 3. Run to steady state. The client warms its cache, skips 4000
  //    accesses, then measures until the mean response time stabilizes.
  const core::RunResult result = system.RunSteadyState();

  // 4. Read the results.
  core::TablePrinter table({"metric", "value"});
  table.AddRow({"mean response (broadcast units)",
                core::TablePrinter::Fmt(result.mean_response, 1)});
  table.AddRow({"client cache hit rate",
                core::TablePrinter::Pct(result.mc_hit_rate)});
  table.AddRow({"pull requests submitted",
                std::to_string(result.requests_submitted)});
  table.AddRow({"server drop rate",
                core::TablePrinter::Pct(result.drop_rate)});
  table.AddRow({"slots: push / pull / idle",
                core::TablePrinter::Pct(result.push_slot_frac, 0) + " / " +
                    core::TablePrinter::Pct(result.pull_slot_frac, 0) +
                    " / " + core::TablePrinter::Pct(result.idle_slot_frac, 0)});
  std::printf("\n%s\n", table.ToString().c_str());

  std::printf(
      "Try flipping config.mode to kPurePush or kPurePull, or sweeping\n"
      "config.think_time_ratio, to see the tradeoffs from the paper.\n");
  return 0;
}
