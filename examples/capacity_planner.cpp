// Capacity planner: the workflow the paper's conclusion asks for ("tools
// to make the parameter setting decisions for real dissemination-based
// information systems easier").
//
// Given an uncertain load range, this example:
//   1. asks the analytic advisor for a robust (PullBW, ThresPerc) choice,
//   2. validates the pick by simulation with independent replications
//      (reporting a 95% confidence interval, not a single noisy number),
//   3. compares it against simply turning on the dynamic controllers.

#include <cstdio>
#include <vector>

#include "analysis/advisor.h"
#include "core/experiment.h"
#include "core/system.h"
#include "core/table_printer.h"

int main() {
  using namespace bdisk;

  const std::vector<double> load_range = {10, 50, 250};

  // --- 1. Analytic recommendation. ---
  core::SystemConfig base;  // Paper Table 3 defaults.
  const analysis::Recommendation rec =
      analysis::RecommendRobust(base, load_range);
  std::printf("Advisor (robust over TTR {10,50,250}): PullBW=%.0f%%, "
              "ThresPerc=%.0f%% — predicted worst case %.1f units\n\n",
              rec.pull_bw * 100, rec.thres_perc * 100,
              rec.predicted_response);

  // --- 2/3. Validate by simulation, with replications. ---
  core::SteadyStateProtocol protocol;
  protocol.max_measured_accesses = 12000;

  core::TablePrinter table({"load (TTR)", "advised (95% CI)",
                            "adaptive (95% CI)"});
  for (const double ttr : load_range) {
    core::SystemConfig advised = base;
    advised.mode = core::DeliveryMode::kIpp;
    advised.pull_bw = rec.pull_bw;
    advised.thres_perc = rec.thres_perc;
    advised.think_time_ratio = ttr;
    const core::ReplicationResult advised_result =
        core::RunReplicated(advised, 3, protocol);

    core::SystemConfig adaptive = base;
    adaptive.mode = core::DeliveryMode::kIpp;
    adaptive.think_time_ratio = ttr;
    adaptive.adaptive_pull_bw = true;
    adaptive.adaptive_threshold = true;
    const core::ReplicationResult adaptive_result =
        core::RunReplicated(adaptive, 3, protocol);

    table.AddRow(
        {core::TablePrinter::Fmt(ttr, 0),
         core::TablePrinter::Fmt(advised_result.means.Mean(), 1) + " ± " +
             core::TablePrinter::Fmt(advised_result.ci95_half_width, 1),
         core::TablePrinter::Fmt(adaptive_result.means.Mean(), 1) + " ± " +
             core::TablePrinter::Fmt(adaptive_result.ci95_half_width, 1)});
  }
  std::printf("Simulated validation (3 replications per point):\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Reading: the advisor hedges with one static setting; the adaptive\n"
      "system re-tunes online. Both avoid the catastrophic corners a naive\n"
      "static choice risks (see bench_fig03_steady_state).\n");
  return 0;
}
