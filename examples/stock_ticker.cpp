// Stock ticker scenario: a brokerage broadcasts quote pages to thousands of
// terminals. A few hundred symbols are hot; the long tail is touched
// rarely. Should the tail be broadcast at all, or left pull-only?
//
// This is the paper's Experiment 3 (§4.3) dressed as an application: we
// truncate the push schedule (chop the slowest disk, then the middle one)
// and watch response time, provided enough pull bandwidth exists to serve
// the tail.

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"
#include "core/table_printer.h"

int main() {
  using namespace bdisk;

  const std::vector<std::uint32_t> chops = {0, 200, 400, 500, 600, 700};
  const std::vector<double> pull_bws = {0.1, 0.3, 0.5};

  std::vector<core::SweepPoint> points;
  for (const std::uint32_t chop : chops) {
    for (const double bw : pull_bws) {
      core::SweepPoint point;
      point.curve = "PullBW " + core::TablePrinter::Pct(bw, 0);
      point.x = chop;
      point.config.mode = core::DeliveryMode::kIpp;
      point.config.pull_bw = bw;
      point.config.thres_perc = 0.35;  // Conserve the backchannel.
      point.config.chop_count = chop;
      point.config.think_time_ratio = 25.0;  // Light trading day.
      points.push_back(point);
    }
  }

  std::printf("Stock ticker: average quote latency (broadcast units) as the\n"
              "cold tail is dropped from the broadcast (ThresPerc=35%%,\n"
              "ThinkTimeRatio=25).\n\n");

  const auto outcomes = core::RunSweep(points);

  core::TablePrinter table(
      {"non-broadcast pages", "PullBW 10%", "PullBW 30%", "PullBW 50%"});
  for (const std::uint32_t chop : chops) {
    std::vector<std::string> row = {std::to_string(chop)};
    for (const double bw : pull_bws) {
      for (const auto& outcome : outcomes) {
        if (outcome.point.x == chop && outcome.point.config.pull_bw == bw) {
          row.push_back(
              core::TablePrinter::Fmt(outcome.result.mean_response, 1));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Expected shape (paper Figure 7b): with ample pull bandwidth (50%%),\n"
      "dropping the cold tail *improves* latency — its slots go to hot\n"
      "pages and pulls. With starved pull bandwidth (10%%), truncation is\n"
      "catastrophic: tail quotes have no safety net and requests drop.\n");
  return 0;
}
