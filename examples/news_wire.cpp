// News wire scenario: an election-night news service. The audience size
// swings by an order of magnitude within hours. Which delivery algorithm
// keeps latency acceptable across the whole swing?
//
// This replays the paper's central tradeoff (Experiment 1, Figure 3) as a
// capacity-planning question: Pure-Pull is superb off-peak and terrible at
// peak; Pure-Push is flat everywhere; IPP with a threshold rides between.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"
#include "core/table_printer.h"

int main() {
  using namespace bdisk;

  const std::vector<double> audience = {10, 25, 50, 100, 250};

  struct Algorithm {
    const char* name;
    core::DeliveryMode mode;
    double pull_bw;
    double thres_perc;
  };
  const std::vector<Algorithm> algorithms = {
      {"Pure-Push", core::DeliveryMode::kPurePush, 0.0, 0.0},
      {"Pure-Pull", core::DeliveryMode::kPurePull, 1.0, 0.0},
      {"IPP(50%,T25%)", core::DeliveryMode::kIpp, 0.5, 0.25},
  };

  std::vector<core::SweepPoint> points;
  for (const Algorithm& algo : algorithms) {
    for (const double ttr : audience) {
      core::SweepPoint point;
      point.curve = algo.name;
      point.x = ttr;
      point.config.mode = algo.mode;
      point.config.pull_bw = algo.pull_bw;
      point.config.thres_perc = algo.thres_perc;
      point.config.think_time_ratio = ttr;
      points.push_back(point);
    }
  }

  std::printf("Election night: mean story latency (broadcast units) vs\n"
              "audience size (ThinkTimeRatio).\n\n");
  const auto outcomes = core::RunSweep(points);

  core::TablePrinter table(
      {"audience (TTR)", "Pure-Push", "Pure-Pull", "IPP(50%,T25%)"});
  for (const double ttr : audience) {
    std::vector<std::string> row = {core::TablePrinter::Fmt(ttr, 0)};
    for (const Algorithm& algo : algorithms) {
      for (const auto& outcome : outcomes) {
        if (outcome.point.x == ttr &&
            outcome.point.curve == algo.name) {
          row.push_back(
              core::TablePrinter::Fmt(outcome.result.mean_response, 1));
        }
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // Worst-case latency across the swing is the planning number.
  std::printf("Capacity-planning view — worst case across the swing:\n");
  for (const Algorithm& algo : algorithms) {
    double worst = 0.0;
    for (const auto& outcome : outcomes) {
      if (outcome.point.curve == algo.name) {
        worst = std::max(worst, outcome.result.mean_response);
      }
    }
    std::printf("  %-15s %8.1f\n", algo.name, worst);
  }
  std::printf(
      "\nExpected shape (paper Figure 3a): Pull wins off-peak by orders of\n"
      "magnitude, collapses at peak; Push is flat; IPP is never the best\n"
      "but avoids both failure modes — the paper's argument for mixing.\n");
  return 0;
}
